// Tests of the segmentation unit: register loads (null selectors, privilege
// and type checks), the translation pipeline with its limit checks, the
// hidden descriptor cache, and descriptor-table limit checks.
#include <gtest/gtest.h>

#include "x86seg/descriptor_table.hpp"
#include "x86seg/segmentation_unit.hpp"

namespace cash::x86seg {
namespace {

class SegUnitTest : public testing::Test {
 protected:
  SegUnitTest() : unit_(gdt_, ldt_) {
    // GDT entry 1: flat data; entry 2: flat code.
    EXPECT_TRUE(gdt_.write(1, SegmentDescriptor::page_granular_data(
                                  0, 1U << 20, true, 3)).ok());
    EXPECT_TRUE(
        gdt_.write(2, SegmentDescriptor::code_segment(0, 1U << 20, true, 3))
            .ok());
    // LDT entry 1: a 256-byte array segment at 0x8000.
    EXPECT_TRUE(
        ldt_.write(1, SegmentDescriptor::byte_granular_data(0x8000, 256))
            .ok());
  }

  DescriptorTable gdt_{DescriptorTable::Kind::kGlobal};
  DescriptorTable ldt_{DescriptorTable::Kind::kLocal};
  SegmentationUnit unit_;
};

TEST_F(SegUnitTest, LoadAndTranslate) {
  ASSERT_TRUE(unit_.load(SegReg::kGs, Selector::make(1, true, 3)).ok());
  const Result<std::uint32_t> linear =
      unit_.translate(SegReg::kGs, 16, 4, Access::kWrite);
  ASSERT_TRUE(linear.ok());
  EXPECT_EQ(linear.value(), 0x8010U);
}

TEST_F(SegUnitTest, LimitViolationFaults) {
  ASSERT_TRUE(unit_.load(SegReg::kGs, Selector::make(1, true, 3)).ok());
  const Result<std::uint32_t> past_end =
      unit_.translate(SegReg::kGs, 256, 4, Access::kRead);
  ASSERT_FALSE(past_end.ok());
  EXPECT_EQ(past_end.fault().kind, FaultKind::kGeneralProtection);

  // Straddling the end also faults (offset 253..256 with limit 255).
  EXPECT_FALSE(unit_.translate(SegReg::kGs, 253, 4, Access::kRead).ok());
  // The very last word is fine.
  EXPECT_TRUE(unit_.translate(SegReg::kGs, 252, 4, Access::kRead).ok());
}

TEST_F(SegUnitTest, NegativeOffsetWrapsAndFaults) {
  ASSERT_TRUE(unit_.load(SegReg::kGs, Selector::make(1, true, 3)).ok());
  // addr - base underflows to a huge offset: the lower-bound check.
  const std::uint32_t below = 0x8000 - 4;
  const std::uint32_t offset = below - 0x8000; // wraps to 0xFFFFFFFC
  EXPECT_FALSE(unit_.translate(SegReg::kGs, offset, 4, Access::kRead).ok());
}

TEST_F(SegUnitTest, NullSelectorLoadsButFaultsOnUse) {
  ASSERT_TRUE(unit_.load(SegReg::kEs, Selector(0)).ok());
  const Result<std::uint32_t> use =
      unit_.translate(SegReg::kEs, 0, 4, Access::kRead);
  ASSERT_FALSE(use.ok());
  EXPECT_EQ(use.fault().kind, FaultKind::kGeneralProtection);
}

TEST_F(SegUnitTest, NullSelectorIntoSsOrCsFaults) {
  EXPECT_FALSE(unit_.load(SegReg::kSs, Selector(0)).ok());
  EXPECT_FALSE(unit_.load(SegReg::kCs, Selector(0)).ok());
}

TEST_F(SegUnitTest, SelectorPastTableLimitFaults) {
  EXPECT_FALSE(unit_.load(SegReg::kGs, Selector::make(8000, true, 3)).ok());
}

TEST_F(SegUnitTest, NonPresentDescriptorFaultsWithNp) {
  SegmentDescriptor d = SegmentDescriptor::byte_granular_data(0, 16);
  d.set_present(false);
  ASSERT_TRUE(ldt_.write(2, d).ok());
  const Status s = unit_.load(SegReg::kGs, Selector::make(2, true, 3));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.fault().kind, FaultKind::kSegmentNotPresent);
}

TEST_F(SegUnitTest, PrivilegeViolationFaults) {
  ASSERT_TRUE(
      ldt_.write(3, SegmentDescriptor::byte_granular_data(0, 16, true, 0))
          .ok());
  // CPL 3 loading a DPL-0 data segment: #GP.
  EXPECT_FALSE(unit_.load(SegReg::kGs, Selector::make(3, true, 3)).ok());
  unit_.set_cpl(0);
  EXPECT_TRUE(unit_.load(SegReg::kGs, Selector::make(3, true, 0)).ok());
}

TEST_F(SegUnitTest, WriteToReadOnlySegmentFaults) {
  ASSERT_TRUE(
      ldt_.write(4, SegmentDescriptor::byte_granular_data(0x9000, 64,
                                                          /*writable=*/false))
          .ok());
  ASSERT_TRUE(unit_.load(SegReg::kFs, Selector::make(4, true, 3)).ok());
  EXPECT_TRUE(unit_.translate(SegReg::kFs, 0, 4, Access::kRead).ok());
  EXPECT_FALSE(unit_.translate(SegReg::kFs, 0, 4, Access::kWrite).ok());
}

TEST_F(SegUnitTest, SystemDescriptorCannotLoadIntoSegmentRegister) {
  ASSERT_TRUE(
      ldt_.write(5, SegmentDescriptor::call_gate(0x10, 0x1000, 3, 0)).ok());
  EXPECT_FALSE(unit_.load(SegReg::kGs, Selector::make(5, true, 3)).ok());
}

TEST_F(SegUnitTest, HiddenPartSurvivesDescriptorRewrite) {
  // SDM 3.4.3: translation uses the cached hidden part until a reload.
  ASSERT_TRUE(unit_.load(SegReg::kGs, Selector::make(1, true, 3)).ok());
  ASSERT_TRUE(
      ldt_.write(1, SegmentDescriptor::byte_granular_data(0x8000, 8)).ok());
  // Offset 100 exceeds the NEW limit but the stale cache still allows it.
  EXPECT_TRUE(unit_.translate(SegReg::kGs, 100, 4, Access::kRead).ok());
  // After the reload the new, smaller limit applies.
  ASSERT_TRUE(unit_.load(SegReg::kGs, Selector::make(1, true, 3)).ok());
  EXPECT_FALSE(unit_.translate(SegReg::kGs, 100, 4, Access::kRead).ok());
}

TEST_F(SegUnitTest, RestoreBringsBackSavedState) {
  ASSERT_TRUE(unit_.load(SegReg::kGs, Selector::make(1, true, 3)).ok());
  const SegmentRegister saved = unit_.reg(SegReg::kGs);
  ASSERT_TRUE(unit_.load(SegReg::kGs, Selector(0)).ok()); // clobber
  EXPECT_FALSE(unit_.translate(SegReg::kGs, 0, 4, Access::kRead).ok());
  unit_.restore(SegReg::kGs, saved);
  EXPECT_TRUE(unit_.translate(SegReg::kGs, 0, 4, Access::kRead).ok());
}

TEST_F(SegUnitTest, SsLimitViolationRaisesStackFault) {
  ASSERT_TRUE(
      ldt_.write(6, SegmentDescriptor::byte_granular_data(0xA000, 64)).ok());
  ASSERT_TRUE(unit_.load(SegReg::kSs, Selector::make(6, true, 3)).ok());
  const Result<std::uint32_t> bad =
      unit_.translate(SegReg::kSs, 64, 4, Access::kWrite);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.fault().kind, FaultKind::kStackFault);
}

TEST(DescriptorTable, PresentCountAndClear) {
  DescriptorTable table(DescriptorTable::Kind::kLocal);
  EXPECT_EQ(table.present_count(), 0U);
  ASSERT_TRUE(table.write(1, SegmentDescriptor::byte_granular_data(0, 8)).ok());
  ASSERT_TRUE(table.write(9, SegmentDescriptor::byte_granular_data(0, 8)).ok());
  EXPECT_EQ(table.present_count(), 2U);
  ASSERT_TRUE(table.clear(1).ok());
  EXPECT_EQ(table.present_count(), 1U);
}

TEST(DescriptorTable, WritePastLimitFaults) {
  DescriptorTable table(DescriptorTable::Kind::kLocal, 16);
  EXPECT_FALSE(
      table.write(16, x86seg::SegmentDescriptor::byte_granular_data(0, 8))
          .ok());
  EXPECT_FALSE(table.read_raw(16).ok());
  EXPECT_TRUE(table.read_raw(15).ok());
}

} // namespace
} // namespace cash::x86seg
