// FaultInjector unit tests: deterministic rule matching, seeded replay,
// JSON (de)serialisation, and the bit-transparency contract — an empty (or
// never-firing) plan must not perturb a machine run.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/cash.hpp"
#include "faultinject/faultinject.hpp"
#include "vm/machine.hpp"
#include "vm/snapshot.hpp"
#include "workloads/chaos.hpp"
#include "workloads/tenants.hpp"

namespace cash::faultinject {
namespace {

TEST(FaultInjector, EmptyPlanIsUnarmedAndCountsNothing) {
  FaultInjector injector(FaultPlan{}, 42);
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.should_inject(FaultSite::kSegAllocate));
  }
  EXPECT_EQ(injector.stats().total(), 0U);
  EXPECT_EQ(injector.stats().hits_at(FaultSite::kSegAllocate), 0U);
}

TEST(FaultInjector, StartPeriodAndMaxFires) {
  FaultPlan plan;
  // Fire on hits 2, 5, 8 (start 2, period 3), at most 3 times.
  plan.rules.push_back({FaultSite::kHeapAlloc, 2, 3, 3, 1});
  FaultInjector injector(plan, 1);
  EXPECT_TRUE(injector.armed());
  std::string pattern;
  for (int i = 0; i < 12; ++i) {
    pattern += injector.should_inject(FaultSite::kHeapAlloc) ? '1' : '0';
  }
  EXPECT_EQ(pattern, "001001001000");
  EXPECT_EQ(injector.stats().injected_at(FaultSite::kHeapAlloc), 3U);
  EXPECT_EQ(injector.stats().hits_at(FaultSite::kHeapAlloc), 12U);
}

TEST(FaultInjector, SitesAreIndependent) {
  FaultPlan plan;
  plan.rules.push_back({FaultSite::kSegAllocate, 0, 1, 0, 1});
  FaultInjector injector(plan, 1);
  // A rule for one site never fires at another, but hits are counted.
  EXPECT_FALSE(injector.should_inject(FaultSite::kCallGateBusy));
  EXPECT_TRUE(injector.should_inject(FaultSite::kSegAllocate));
  EXPECT_EQ(injector.stats().hits_at(FaultSite::kCallGateBusy), 1U);
  EXPECT_EQ(injector.stats().injected_at(FaultSite::kCallGateBusy), 0U);
  EXPECT_EQ(injector.stats().injected_at(FaultSite::kSegAllocate), 1U);
}

TEST(FaultInjector, ProbabilisticRuleReplaysIdentically) {
  FaultPlan plan;
  plan.seed = 99;
  plan.rules.push_back({FaultSite::kNetRequestTimeout, 0, 1, 0, 3});
  auto pattern_with = [&](std::uint32_t seed) {
    FaultInjector injector(plan, seed);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern +=
          injector.should_inject(FaultSite::kNetRequestTimeout) ? '1' : '0';
    }
    return pattern;
  };
  const std::string first = pattern_with(7);
  EXPECT_EQ(first, pattern_with(7)); // same seed: identical replay
  EXPECT_NE(first, pattern_with(8)); // different seed: different pattern
  EXPECT_NE(first.find('1'), std::string::npos); // one_in=3 fires sometimes
  EXPECT_NE(first.find('0'), std::string::npos); // ... but not always
}

TEST(FaultPlan, JsonRoundTrip) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.net_retry_budget = 5;
  plan.rules.push_back({FaultSite::kSegAllocate, 1, 3, 0, 1});
  plan.rules.push_back({FaultSite::kCallGateBusy, 0, 1, 7, 2});
  plan.rules.push_back({FaultSite::kNetRequestTimeout, 4, 2, 1, 9});
  plan.rules.push_back({FaultSite::kLdtCrossTenant, 0, 2, 3, 1});

  const std::string json = plan.to_json();
  FaultPlan parsed;
  ASSERT_TRUE(FaultPlan::from_json(json, &parsed)) << json;
  EXPECT_EQ(parsed, plan);
}

TEST(FaultPlan, FromJsonRejectsMalformedInput) {
  FaultPlan out;
  EXPECT_FALSE(FaultPlan::from_json("", &out));
  EXPECT_FALSE(FaultPlan::from_json("{", &out));
  EXPECT_FALSE(FaultPlan::from_json("[]", &out));
  EXPECT_FALSE(FaultPlan::from_json(R"({"seed": -1, "rules": []})", &out));
  EXPECT_FALSE(FaultPlan::from_json(
      R"({"seed": 0, "rules": [{"site": "no-such-site"}]})", &out));
  EXPECT_FALSE(FaultPlan::from_json(
      R"({"seed": 0, "bogus_key": 1, "rules": []})", &out));
  EXPECT_FALSE(
      FaultPlan::from_json(R"({"seed": 0, "rules": []} trailing)", &out));
}

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (int s = 0; s < kNumFaultSites; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    FaultSite parsed{};
    ASSERT_TRUE(site_from_string(to_string(site), &parsed)) << s;
    EXPECT_EQ(parsed, site);
  }
  FaultSite parsed{};
  EXPECT_FALSE(site_from_string("not-a-site", &parsed));
}

// --- Bit-transparency at the machine level --------------------------------

constexpr const char* kProbeProgram = R"(
int g[16];
int main() {
  int *p;
  int i;
  int sum = 0;
  p = malloc(32);
  for (i = 0; i < 16; i = i + 1) {
    g[i] = i * 3;
  }
  for (i = 0; i < 8; i = i + 1) {
    p[i] = g[i + 4];
    sum = sum + p[i];
  }
  free(p);
  print_int(sum);
  return sum;
}
)";

vm::RunResult run_with_plan(const CompiledProgram& program,
                            const FaultPlan& plan) {
  vm::MachineConfig cfg = program.options().machine;
  cfg.fault_plan = plan;
  return program.make_machine(cfg)->run();
}

// Everything simulated must match; host-side fault_stats bookkeeping is
// compared separately where relevant.
void expect_simulated_identical(const vm::RunResult& a,
                                const vm::RunResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.breakdown.base, b.breakdown.base);
  EXPECT_EQ(a.breakdown.checking, b.breakdown.checking);
  EXPECT_EQ(a.breakdown.runtime, b.breakdown.runtime);
  EXPECT_EQ(a.counters.instructions, b.counters.instructions);
  EXPECT_EQ(a.counters.hw_checked_accesses, b.counters.hw_checked_accesses);
  EXPECT_EQ(a.counters.sw_checks, b.counters.sw_checks);
  EXPECT_EQ(a.segment_stats.alloc_requests, b.segment_stats.alloc_requests);
  EXPECT_EQ(a.segment_stats.cache_hits, b.segment_stats.cache_hits);
  EXPECT_EQ(a.segment_stats.global_fallbacks,
            b.segment_stats.global_fallbacks);
  EXPECT_EQ(a.heap_stats.malloc_calls, b.heap_stats.malloc_calls);
  EXPECT_EQ(a.kernel_account.kernel_cycles, b.kernel_account.kernel_cycles);
}

TEST(FaultInjectTransparency, EmptyPlanIsBitIdenticalToDefaultConfig) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kProbeProgram, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;

  const vm::RunResult plain = compiled.program->run();
  const vm::RunResult empty =
      run_with_plan(*compiled.program, FaultPlan{});
  ASSERT_TRUE(plain.ok);
  expect_simulated_identical(plain, empty);
  EXPECT_EQ(empty.fault_stats.total(), 0U);
  // The unarmed fast path must not even count hits.
  EXPECT_EQ(empty.fault_stats.hits_at(FaultSite::kSegAllocate), 0U);
}

TEST(FaultInjectTransparency, NeverFiringPlanOnlyAddsHitCounts) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kProbeProgram, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;

  FaultPlan dormant;
  dormant.rules.push_back(
      {FaultSite::kSegAllocate, 1u << 30, 1, 0, 1}); // starts far too late
  const vm::RunResult plain = compiled.program->run();
  const vm::RunResult armed = run_with_plan(*compiled.program, dormant);
  ASSERT_TRUE(plain.ok);
  expect_simulated_identical(plain, armed);
  EXPECT_EQ(armed.fault_stats.total(), 0U);
  // Armed, so sites are probed — hits recorded, nothing injected.
  EXPECT_GT(armed.fault_stats.hits_at(FaultSite::kSegAllocate), 0U);
}

TEST(FaultInjectReplay, NonEmptyPlanReplaysIdentically) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kProbeProgram, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;

  FaultPlan plan;
  plan.seed = 3;
  plan.rules.push_back({FaultSite::kSegAllocate, 0, 2, 0, 2});
  plan.rules.push_back({FaultSite::kCallGateBusy, 1, 2, 0, 1});
  const vm::RunResult first = run_with_plan(*compiled.program, plan);
  const vm::RunResult second = run_with_plan(*compiled.program, plan);
  expect_simulated_identical(first, second);
  EXPECT_EQ(first.fault_stats.total(), second.fault_stats.total());
  for (int s = 0; s < kNumFaultSites; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    EXPECT_EQ(first.fault_stats.hits_at(site),
              second.fault_stats.hits_at(site));
    EXPECT_EQ(first.fault_stats.injected_at(site),
              second.fault_stats.injected_at(site));
  }
}

TEST(FaultInjectMachine, InjectedHeapExhaustionIsAStructuredFault) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kProbeProgram, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;

  FaultPlan plan;
  plan.rules.push_back({FaultSite::kHeapAlloc, 0, 1, 0, 1});
  const vm::RunResult run = run_with_plan(*compiled.program, plan);
  EXPECT_FALSE(run.ok);
  EXPECT_TRUE(run.error.empty()); // structured, not an untyped string
  ASSERT_TRUE(run.fault.has_value());
  EXPECT_EQ(run.fault->kind, FaultKind::kResourceExhausted);
  EXPECT_NE(run.fault->detail.find("simulated heap exhausted"),
            std::string::npos);
  EXPECT_EQ(run.fault_stats.injected_at(FaultSite::kHeapAlloc), 1U);
}

TEST(FaultInjectMachine, InjectedFrameExhaustionIsAStructuredFault) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kProbeProgram, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;

  FaultPlan plan;
  plan.rules.push_back({FaultSite::kPhysFrameAlloc, 0, 1, 0, 1});
  const vm::RunResult run = run_with_plan(*compiled.program, plan);
  EXPECT_FALSE(run.ok);
  EXPECT_TRUE(run.error.empty());
  ASSERT_TRUE(run.fault.has_value());
  EXPECT_EQ(run.fault->kind, FaultKind::kResourceExhausted);
  EXPECT_NE(run.fault->detail.find("physical memory exhausted"),
            std::string::npos);
}

TEST(FaultInjectMachine, InjectedLdtExhaustionCompletesViaGlobalFallback) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kProbeProgram, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;

  const vm::RunResult reference = compiled.program->run();
  ASSERT_TRUE(reference.ok);

  FaultPlan plan;
  plan.rules.push_back({FaultSite::kSegAllocate, 0, 1, 0, 1});
  const vm::RunResult run = run_with_plan(*compiled.program, plan);
  // Unchecked but correct: the global segment imposes no bounds, so the
  // in-bounds program completes with the reference output.
  EXPECT_TRUE(run.ok);
  EXPECT_EQ(run.output, reference.output);
  EXPECT_EQ(run.exit_code, reference.exit_code);
  EXPECT_GT(run.segment_stats.global_fallbacks, 0U);
  EXPECT_EQ(run.segment_stats.kernel_allocs, 0U);
  // The rebased accesses still run through the segmentation hardware — only
  // now against the global segment's (no-op) limit, so the access count is
  // unchanged while the protection is gone.
  EXPECT_EQ(run.counters.hw_checked_accesses,
            reference.counters.hw_checked_accesses);
}

TEST(FaultInjectMachine, InjectedCrossTenantBudgetExhaustionDegrades) {
  // kLdtCrossTenant simulates co-tenants having drained the shared LDT
  // slot budget: the kernel refuses the fresh install *after* the gate
  // charge and user space degrades to the unchecked global segment. The
  // in-bounds program still completes with the reference output, and the
  // refusals are attributed to budget_fallbacks. Deterministic: a second
  // run replays bit-identically.
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kProbeProgram, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;

  const vm::RunResult reference = compiled.program->run();
  ASSERT_TRUE(reference.ok);

  FaultPlan plan;
  plan.rules.push_back({FaultSite::kLdtCrossTenant, 0, 2, 0, 1});
  const vm::RunResult run = run_with_plan(*compiled.program, plan);
  EXPECT_TRUE(run.ok);
  EXPECT_EQ(run.output, reference.output);
  EXPECT_EQ(run.exit_code, reference.exit_code);
  EXPECT_GT(run.segment_stats.budget_fallbacks, 0U);
  EXPECT_GE(run.segment_stats.global_fallbacks,
            run.segment_stats.budget_fallbacks);
  EXPECT_GT(run.fault_stats.injected_at(FaultSite::kLdtCrossTenant), 0U);

  const vm::RunResult replay = run_with_plan(*compiled.program, plan);
  expect_simulated_identical(run, replay);
  EXPECT_EQ(replay.segment_stats.budget_fallbacks,
            run.segment_stats.budget_fallbacks);
}

TEST(ChaosMatrix, LdtCrossTenantPlanDegradesButCompletes) {
  // The chaos matrix carries an ldt-cross-tenant plan; its cells must
  // complete with matching output, show injected faults, and register as
  // degraded (global fallbacks above the clean reference).
  const auto& plans = workloads::chaos_plans();
  const bool registered =
      std::any_of(plans.begin(), plans.end(), [](const auto& spec) {
        return spec.name == "ldt-cross-tenant";
      });
  ASSERT_TRUE(registered);

  const workloads::ChaosReport report = workloads::run_chaos_matrix(1, 3, {2});
  EXPECT_EQ(report.violations, 0u);
  int seen = 0;
  for (const workloads::ChaosCell& cell : report.cells) {
    if (cell.plan != "ldt-cross-tenant") {
      continue;
    }
    ++seen;
    EXPECT_TRUE(cell.ok()) << cell.detail;
    EXPECT_TRUE(cell.completed) << "seed " << cell.seed;
    EXPECT_TRUE(cell.output_matches) << "seed " << cell.seed;
    EXPECT_TRUE(cell.degraded) << "seed " << cell.seed;
    EXPECT_GT(cell.faults_injected, 0u) << "seed " << cell.seed;
  }
  EXPECT_EQ(seen, 2);
}

TEST(TenantIsolation, NeighborsOfChaoticTenantMatchSoloBaselines) {
  // The multi-tenant differential: tenant 0 runs under an armed
  // ldt-cross-tenant plan on the shared kernel; every neighbor's record
  // must be bit-identical to the record it produces alone on a private
  // kernel, and every cross-process selector probe must be refused.
  workloads::TenantOptions opt;
  opt.processes = 3;
  opt.arrays_per_process = 20;
  opt.rounds = 2;
  opt.quantum_cycles = 900;
  opt.seed = 31;
  opt.tenant0_plan.rules.push_back({FaultSite::kLdtCrossTenant, 0, 2, 0, 1});

  const workloads::TenantCell cell = workloads::run_tenant_cell(opt);
  ASSERT_EQ(cell.tenants.size(), 3u);
  EXPECT_GT(cell.tenants[0].faults_injected, 0u);
  EXPECT_GT(cell.tenants[0].seg.budget_fallbacks, 0u);
  for (int i = 0; i < opt.processes; ++i) {
    const workloads::TenantRecord& in_cell =
        cell.tenants[static_cast<std::size_t>(i)];
    EXPECT_EQ(in_cell.probe_self_failures, 0u) << "tenant " << i;
    EXPECT_EQ(in_cell.probe_rejections, in_cell.probe_attempts)
        << "tenant " << i;
    const workloads::TenantRecord solo = workloads::run_tenant_solo(opt, i);
    EXPECT_EQ(in_cell, solo) << "tenant " << i;
  }
  // Unarmed neighbors saw no chaos at all.
  EXPECT_EQ(cell.tenants[1].faults_injected, 0u);
  EXPECT_EQ(cell.tenants[2].faults_injected, 0u);
}

// --- Re-arm semantics (armed fork-from-snapshot) --------------------------

TEST(FaultInjectRearm, CopyAssignmentSnapshotsAndRewindsHitCounters) {
  // Machine snapshots copy the injector wholesale; a later restore assigns
  // it back. That must rewind the per-site hit counters, the per-rule fire
  // counts, and the RNG stream — so the rewound injector replays the
  // decision suffix exactly.
  FaultPlan plan;
  plan.seed = 21;
  plan.rules.push_back({FaultSite::kSegAllocate, 1, 2, 3, 2});
  FaultInjector live(plan, 9);
  for (int i = 0; i < 5; ++i) {
    (void)live.should_inject(FaultSite::kSegAllocate);
  }
  const FaultInjector snapshot = live; // capture()
  std::string after_capture;
  for (int i = 0; i < 16; ++i) {
    after_capture +=
        live.should_inject(FaultSite::kSegAllocate) ? '1' : '0';
  }
  live = snapshot; // restore()
  EXPECT_EQ(live.stats().hits_at(FaultSite::kSegAllocate), 5U);
  std::string after_restore;
  for (int i = 0; i < 16; ++i) {
    after_restore +=
        live.should_inject(FaultSite::kSegAllocate) ? '1' : '0';
  }
  EXPECT_EQ(after_restore, after_capture);
}

TEST(FaultInjectRearm, RearmedInjectorMatchesFreshlySeededInjector) {
  // The armed serving loop restores an unarmed parent image and then
  // re-arms via in-place assignment from a freshly constructed injector.
  // The result must be indistinguishable from an injector built fresh with
  // the per-request plan/seed: zero counters, zero fires, same RNG stream.
  FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back({FaultSite::kNetRequestTimeout, 0, 1, 0, 3});
  plan.rules.push_back({FaultSite::kHeapAlloc, 2, 3, 2, 1});
  auto decisions = [&](FaultInjector& injector) {
    std::string pattern;
    for (int i = 0; i < 48; ++i) {
      pattern += injector.should_inject(FaultSite::kNetRequestTimeout)
                     ? 'T' : 't';
      pattern += injector.should_inject(FaultSite::kHeapAlloc) ? 'H' : 'h';
    }
    return pattern;
  };
  for (std::uint32_t request = 0; request < 4; ++request) {
    FaultPlan seeded = plan;
    seeded.seed = plan.seed + request;
    FaultInjector fresh(seeded, 1000);
    // A "used" injector standing in for the restored parent's: different
    // plan, counters already advanced.
    FaultPlan stale;
    stale.rules.push_back({FaultSite::kSegAllocate, 0, 1, 0, 1});
    FaultInjector rearmed(stale, 5);
    (void)rearmed.should_inject(FaultSite::kSegAllocate);
    rearmed = FaultInjector(seeded, 1000); // Machine::arm_faults
    EXPECT_EQ(rearmed.stats().total(), 0U);
    EXPECT_EQ(rearmed.stats().hits_at(FaultSite::kSegAllocate), 0U);
    EXPECT_EQ(decisions(rearmed), decisions(fresh)) << "request " << request;
  }
}

TEST(FaultInjectRearm, ArmAtForkPointMatchesRebuildAndArm) {
  // Machine-level pin for the serving loop's fork ordering. The parent
  // image (program load included) is materialised unarmed; each child is
  // armed at the fork point. Restoring that image and re-arming must give
  // the same run — cycles, stats, fault pattern — as rebuilding a fresh
  // unarmed machine and arming at the same point, for every request.
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kProbeProgram, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;

  FaultPlan plan;
  plan.seed = 11;
  plan.rules.push_back({FaultSite::kSegAllocate, 0, 2, 0, 2});
  plan.rules.push_back({FaultSite::kCallGateBusy, 1, 2, 0, 1});

  const vm::MachineConfig cfg = compiled.program->options().machine;
  auto rebuilt = compiled.program->make_machine(cfg); // unarmed
  rebuilt->prepare();
  rebuilt->arm_faults(plan, cfg.rng_seed);
  const vm::RunResult reference = rebuilt->run_function("main");
  EXPECT_GT(reference.fault_stats.total(), 0U); // the plan actually bites

  auto forked = compiled.program->make_machine(cfg); // unarmed parent
  forked->prepare();
  auto snap = forked->capture();
  for (int request = 0; request < 3; ++request) {
    forked->restore(*snap);
    forked->arm_faults(plan, cfg.rng_seed);
    const vm::RunResult run = forked->run_function("main");
    expect_simulated_identical(reference, run);
    for (int s = 0; s < kNumFaultSites; ++s) {
      const FaultSite site = static_cast<FaultSite>(s);
      EXPECT_EQ(run.fault_stats.hits_at(site),
                reference.fault_stats.hits_at(site))
          << "request " << request;
      EXPECT_EQ(run.fault_stats.injected_at(site),
                reference.fault_stats.injected_at(site))
          << "request " << request;
    }
  }
}

} // namespace
} // namespace cash::faultinject
