// Parser unit tests: AST shapes, operator precedence and associativity
// (validated through evaluation), and statement-level error recovery.
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"

namespace cash::frontend {
namespace {

TranslationUnit parse_ok(std::string_view source) {
  DiagnosticSink diagnostics;
  Lexer lexer(source, diagnostics);
  Parser parser(lexer.lex(), diagnostics);
  TranslationUnit unit = parser.parse();
  EXPECT_FALSE(diagnostics.has_errors()) << diagnostics.to_string();
  return unit;
}

int parse_error_count(std::string_view source) {
  DiagnosticSink diagnostics;
  Lexer lexer(source, diagnostics);
  Parser parser(lexer.lex(), diagnostics);
  (void)parser.parse();
  return diagnostics.error_count();
}

TEST(Parser, TopLevelShapes) {
  const TranslationUnit unit = parse_ok(R"(
int counter;
float samples[256];
void reset() { counter = 0; }
int get(int *p, float scale) { return p[0]; }
int main() { return 0; }
)");
  ASSERT_EQ(unit.globals.size(), 2U);
  EXPECT_FALSE(unit.globals[0].is_array);
  EXPECT_TRUE(unit.globals[1].is_array);
  EXPECT_EQ(unit.globals[1].elem_count, 256U);
  ASSERT_EQ(unit.functions.size(), 3U);
  EXPECT_EQ(unit.functions[0]->return_type, ir::Type::kVoid);
  ASSERT_EQ(unit.functions[1]->params.size(), 2U);
  EXPECT_EQ(unit.functions[1]->params[0].type, ir::Type::kIntPtr);
  EXPECT_EQ(unit.functions[1]->params[1].type, ir::Type::kFloat);
}

TEST(Parser, StatementShapes) {
  const TranslationUnit unit = parse_ok(R"(
int main() {
  int i;
  if (i) { i = 1; } else { i = 2; }
  while (i < 10) { i++; }
  for (i = 0; i < 4; i++) { continue; }
  { break; }
  return i;
}
)");
  const auto& body = unit.functions[0]->body->body;
  ASSERT_EQ(body.size(), 6U);
  EXPECT_EQ(body[0]->kind, StmtKind::kVarDecl);
  EXPECT_EQ(body[1]->kind, StmtKind::kIf);
  EXPECT_NE(body[1]->else_branch, nullptr);
  EXPECT_EQ(body[2]->kind, StmtKind::kWhile);
  EXPECT_EQ(body[3]->kind, StmtKind::kFor);
  EXPECT_EQ(body[4]->kind, StmtKind::kBlock);
  EXPECT_EQ(body[5]->kind, StmtKind::kReturn);
}

TEST(Parser, DanglingElseBindsToNearestIf) {
  const TranslationUnit unit = parse_ok(R"(
int main() {
  int a;
  if (1)
    if (0) a = 1;
    else a = 2;
  return a;
}
)");
  const Stmt& outer = *unit.functions[0]->body->body[1];
  ASSERT_EQ(outer.kind, StmtKind::kIf);
  EXPECT_EQ(outer.else_branch, nullptr);
  ASSERT_EQ(outer.then_branch->kind, StmtKind::kIf);
  EXPECT_NE(outer.then_branch->else_branch, nullptr);
}

// Precedence and associativity validated by actually evaluating.
struct PrecedenceCase {
  const char* expr;
  int expected;
};

class Precedence : public testing::TestWithParam<PrecedenceCase> {};

TEST_P(Precedence, EvaluatesLikeC) {
  const std::string source = std::string("int main() { return ") +
                             GetParam().expr + "; }";
  CompileResult compiled = compile(source);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const vm::RunResult run = compiled.program->run();
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.exit_code, GetParam().expected) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Precedence,
    testing::Values(PrecedenceCase{"2 + 3 * 4", 14},
                    PrecedenceCase{"(2 + 3) * 4", 20},
                    PrecedenceCase{"20 - 8 - 4", 8},       // left assoc
                    PrecedenceCase{"100 / 10 / 2", 5},     // left assoc
                    PrecedenceCase{"1 << 2 + 1", 8},       // shift < add
                    PrecedenceCase{"7 & 3 == 3", 1},       // cmp > bitand
                    PrecedenceCase{"1 | 2 ^ 2", 1},
                    PrecedenceCase{"0 || 2 && 0", 0},      // && > ||
                    PrecedenceCase{"1 + (2 < 3)", 2},
                    PrecedenceCase{"-3 + 5", 2},
                    PrecedenceCase{"~0 + 2", 1},
                    PrecedenceCase{"10 % 4 * 2", 4}));

TEST(Parser, AssignmentIsRightAssociative) {
  CompileResult compiled = compile(R"(
int main() {
  int a; int b; int c;
  a = b = c = 7;
  return a + b + c;
}
)");
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  EXPECT_EQ(compiled.program->run().exit_code, 21);
}

TEST(Parser, PostfixAndPrefixIncrement) {
  CompileResult compiled = compile(R"(
int main() {
  int a = 5;
  int b;
  b = a++;
  b = b * 100 + ++a;
  return b;  // 5*100 + 7
}
)");
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  EXPECT_EQ(compiled.program->run().exit_code, 507);
}

TEST(Parser, RecoversAtStatementBoundary) {
  // One bad statement yields one error; the next statement still parses
  // (so the next error is also found).
  const int errors = parse_error_count(R"(
int main() {
  int a = ) 3;
  int b = ( 4;
  return 0;
}
)");
  EXPECT_GE(errors, 2);
}

TEST(Parser, MissingSemicolonIsDiagnosed) {
  EXPECT_GE(parse_error_count("int main() { int a = 3 return a; }"), 1);
}

TEST(Parser, ArraySizeMustBePositiveConstant) {
  EXPECT_GE(parse_error_count("int a[0]; int main() { return 0; }"), 1);
  EXPECT_GE(parse_error_count("int main() { int n; int a[n]; return 0; }"),
            1);
}

TEST(Parser, ForHeaderPartsAreOptional) {
  const TranslationUnit unit = parse_ok(R"(
int main() {
  int i = 0;
  for (;;) { break; }
  for (; i < 3;) { i++; }
  return i;
}
)");
  const Stmt& bare = *unit.functions[0]->body->body[1];
  EXPECT_EQ(bare.for_init, nullptr);
  EXPECT_EQ(bare.cond, nullptr);
  EXPECT_EQ(bare.for_step, nullptr);
}

} // namespace
} // namespace cash::frontend
