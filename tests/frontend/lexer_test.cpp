// Lexer unit tests: token kinds, literals, comments, locations, errors.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"

namespace cash::frontend {
namespace {

std::vector<Token> lex_ok(std::string_view source) {
  DiagnosticSink diagnostics;
  Lexer lexer(source, diagnostics);
  std::vector<Token> tokens = lexer.lex();
  EXPECT_FALSE(diagnostics.has_errors()) << diagnostics.to_string();
  return tokens;
}

TEST(Lexer, KeywordsAndIdentifiers) {
  const auto tokens = lex_ok("int foo while whilex _bar");
  ASSERT_EQ(tokens.size(), 6U); // incl. EOF
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].kind, TokenKind::kKwWhile);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[3].text, "whilex");
  EXPECT_EQ(tokens[4].text, "_bar");
  EXPECT_EQ(tokens[5].kind, TokenKind::kEof);
}

TEST(Lexer, IntegerLiterals) {
  const auto tokens = lex_ok("0 42 0x1F 0XFF");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 0x1F);
  EXPECT_EQ(tokens[3].int_value, 0xFF);
}

TEST(Lexer, FloatLiterals) {
  const auto tokens = lex_ok("1.5 0.25 2e3 1.5e-2");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLit);
  EXPECT_FLOAT_EQ(tokens[0].float_value, 1.5F);
  EXPECT_FLOAT_EQ(tokens[1].float_value, 0.25F);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloatLit);
  EXPECT_FLOAT_EQ(tokens[2].float_value, 2000.0F);
  EXPECT_FLOAT_EQ(tokens[3].float_value, 0.015F);
}

TEST(Lexer, IntFollowedByMemberLikeDotIsNotFloat) {
  // "1." without a digit after the dot stays an int plus an error later —
  // MiniC has no member access, but the lexer must not consume the dot.
  DiagnosticSink diagnostics;
  Lexer lexer("x = 1 . 5", diagnostics);
  auto tokens = lexer.lex();
  EXPECT_TRUE(diagnostics.has_errors()); // '.' is not a MiniC token
  EXPECT_EQ(tokens[2].kind, TokenKind::kIntLit);
}

TEST(Lexer, MultiCharOperators) {
  const auto tokens =
      lex_ok("== != <= >= << >> && || ++ -- += -= *= /= %=");
  const TokenKind expected[] = {
      TokenKind::kEq,         TokenKind::kNe,         TokenKind::kLe,
      TokenKind::kGe,         TokenKind::kShl,        TokenKind::kShr,
      TokenKind::kAmpAmp,     TokenKind::kPipePipe,   TokenKind::kPlusPlus,
      TokenKind::kMinusMinus, TokenKind::kPlusAssign, TokenKind::kMinusAssign,
      TokenKind::kStarAssign, TokenKind::kSlashAssign,
      TokenKind::kPercentAssign};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
  }
}

TEST(Lexer, CommentsAreSkipped) {
  const auto tokens = lex_ok(R"(
    a // line comment with * and /
    /* block
       comment */ b
  )");
  ASSERT_EQ(tokens.size(), 3U);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, UnterminatedBlockCommentIsAnError) {
  DiagnosticSink diagnostics;
  Lexer lexer("a /* never closed", diagnostics);
  (void)lexer.lex();
  EXPECT_TRUE(diagnostics.has_errors());
}

TEST(Lexer, SourceLocationsTrackLinesAndColumns) {
  const auto tokens = lex_ok("a\n  b");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[0].loc.column, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[1].loc.column, 3);
}

TEST(Lexer, UnknownCharacterIsAnError) {
  DiagnosticSink diagnostics;
  Lexer lexer("a @ b", diagnostics);
  (void)lexer.lex();
  EXPECT_TRUE(diagnostics.has_errors());
}

} // namespace
} // namespace cash::frontend
