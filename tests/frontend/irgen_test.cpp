// Front-end semantic tests: diagnostics for ill-formed programs, loop
// metadata (nesting, preheaders, bodies), array-symbol registration, and
// pointer-reassignment tracking — the inputs the Cash pass depends on.
#include <gtest/gtest.h>

#include "frontend/irgen.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace cash::frontend {
namespace {

std::unique_ptr<ir::Module> gen_ok(std::string_view source) {
  DiagnosticSink diagnostics;
  auto module = compile_to_ir(source, diagnostics);
  EXPECT_TRUE(module != nullptr) << diagnostics.to_string();
  if (module != nullptr) {
    EXPECT_TRUE(ir::verify(*module).empty());
  }
  return module;
}

std::string gen_error(std::string_view source) {
  DiagnosticSink diagnostics;
  auto module = compile_to_ir(source, diagnostics);
  EXPECT_EQ(module, nullptr) << "expected a compile error";
  return diagnostics.to_string();
}

TEST(IrGen, ErrorOnUndeclaredVariable) {
  EXPECT_NE(gen_error("int main() { return x; }").find("undeclared"),
            std::string::npos);
}

TEST(IrGen, ErrorOnRedeclaration) {
  EXPECT_NE(
      gen_error("int main() { int a; int a; return 0; }").find("redeclaration"),
      std::string::npos);
}

TEST(IrGen, InnerScopeMayShadow) {
  gen_ok("int main() { int a = 1; { int a = 2; } return a; }");
}

TEST(IrGen, ErrorOnMissingMain) {
  EXPECT_NE(gen_error("int foo() { return 1; }").find("main"),
            std::string::npos);
}

TEST(IrGen, ErrorOnAssigningToArray) {
  EXPECT_NE(gen_error("int a[4]; int main() { a = 0; return 0; }")
                .find("cannot assign to array"),
            std::string::npos);
}

TEST(IrGen, ErrorOnBreakOutsideLoop) {
  EXPECT_NE(gen_error("int main() { break; return 0; }")
                .find("break outside"),
            std::string::npos);
}

TEST(IrGen, ErrorOnWrongArgumentCount) {
  EXPECT_NE(gen_error("int f(int x) { return x; } "
                      "int main() { return f(1, 2); }")
                .find("wrong number"),
            std::string::npos);
}

TEST(IrGen, ErrorOnUnknownFunction) {
  EXPECT_NE(gen_error("int main() { return nope(); }").find("undeclared"),
            std::string::npos);
}

TEST(IrGen, ErrorOnIndexingScalar) {
  EXPECT_NE(gen_error("int main() { int x; return x[0]; }")
                .find("not an array or pointer"),
            std::string::npos);
}

TEST(IrGen, ErrorOnVoidValueReturn) {
  EXPECT_NE(gen_error("void f() { return 1; } int main() { return 0; }")
                .find("void"),
            std::string::npos);
}

TEST(IrGen, ErrorOnFloatBitwise) {
  EXPECT_NE(gen_error("int main() { float f = 1.0; return 1 & f; }")
                .find("integer operands"),
            std::string::npos);
}

TEST(IrGen, LoopMetadataNesting) {
  auto module = gen_ok(R"(
int main() {
  int i; int j; int k;
  for (i = 0; i < 4; i++) {
    while (j < 2) {
      j++;
    }
    for (k = 0; k < 3; k++) {
      i = i + 0;
    }
  }
  while (i > 0) { i--; }
  return 0;
}
)");
  const ir::Function* main_fn = module->find_function("main");
  ASSERT_NE(main_fn, nullptr);
  ASSERT_EQ(main_fn->loops.size(), 4U);
  EXPECT_EQ(main_fn->outermost_loops().size(), 2U);
  int depth2 = 0;
  for (const ir::Loop& loop : main_fn->loops) {
    EXPECT_NE(loop.preheader, ir::kNoBlock);
    EXPECT_NE(loop.header, ir::kNoBlock);
    EXPECT_FALSE(loop.body.empty());
    if (loop.depth == 2) {
      ++depth2;
      EXPECT_NE(loop.parent, ir::kNoLoop);
    }
  }
  EXPECT_EQ(depth2, 2);
}

TEST(IrGen, MemoryAccessesCarryArrayRefAndLoopTags) {
  auto module = gen_ok(R"(
int a[8];
int main() {
  int i;
  a[0] = 1;
  for (i = 0; i < 8; i++) {
    a[i] = i;
  }
  return 0;
}
)");
  const ir::Function* main_fn = module->find_function("main");
  int in_loop = 0;
  int outside = 0;
  for (const auto& block : main_fn->blocks) {
    for (const ir::Instr& instr : block->instrs) {
      if (instr.op == ir::Opcode::kStore &&
          instr.array_ref != ir::kNoSymbol) {
        (instr.loop != ir::kNoLoop ? in_loop : outside)++;
      }
    }
  }
  EXPECT_EQ(in_loop, 1);
  EXPECT_EQ(outside, 1);
}

TEST(IrGen, ArraySymbolsRegisteredForAllKinds) {
  auto module = gen_ok(R"(
int g[8];
int take(int *p) { return p[0]; }
int main() {
  int local[4];
  int *q;
  q = g;
  local[0] = take(q) + g[0];
  return local[0];
}
)");
  const ir::Function* take_fn = module->find_function("take");
  const ir::Function* main_fn = module->find_function("main");
  // take: pointer param registered.
  ASSERT_EQ(take_fn->array_syms.size(), 1U);
  EXPECT_EQ(take_fn->array_syms[0].kind, ir::ArraySym::Kind::kPointerSlot);
  // main: local array, pointer q, and the referenced global.
  bool has_local = false;
  bool has_ptr = false;
  bool has_global = false;
  for (const ir::ArraySym& sym : main_fn->array_syms) {
    has_local = has_local || sym.kind == ir::ArraySym::Kind::kLocalArray;
    has_ptr = has_ptr || sym.kind == ir::ArraySym::Kind::kPointerSlot;
    has_global = has_global || sym.kind == ir::ArraySym::Kind::kGlobalArray;
  }
  EXPECT_TRUE(has_local);
  EXPECT_TRUE(has_ptr);
  EXPECT_TRUE(has_global);
}

TEST(IrGen, PointerReassignmentInsideLoopIsRecorded) {
  auto module = gen_ok(R"(
int a[8]; int b[8];
int main() {
  int *p;
  int i;
  p = a;
  for (i = 0; i < 8; i++) {
    p[0] = i;
    p = b;     // re-seats p to a different object: unsafe to hoist
  }
  return 0;
}
)");
  const ir::Function* main_fn = module->find_function("main");
  ASSERT_EQ(main_fn->loops.size(), 1U);
  EXPECT_EQ(main_fn->loops[0].reassigned_ptrs.size(), 1U);
}

TEST(IrGen, PointerSteppingIsNotReassignment) {
  auto module = gen_ok(R"(
int a[8];
int main() {
  int *p;
  int i;
  p = a;
  for (i = 0; i < 8; i++) {
    p[0] = i;
    p = p + 1;  // same object: hoisting stays legal
    p++;
  }
  return 0;
}
)");
  const ir::Function* main_fn = module->find_function("main");
  ASSERT_EQ(main_fn->loops.size(), 1U);
  EXPECT_TRUE(main_fn->loops[0].reassigned_ptrs.empty());
}

TEST(IrGen, PrinterProducesText) {
  auto module = gen_ok("int main() { return 1 + 2; }");
  const std::string text = ir::to_text(*module);
  EXPECT_NE(text.find("func main"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

} // namespace
} // namespace cash::frontend
