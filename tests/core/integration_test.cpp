// End-to-end tests of the public API: compile MiniC under each checking
// mode, run it, and verify results, costs, and violation detection.
#include <gtest/gtest.h>

#include "core/cash.hpp"

namespace cash {
namespace {

using passes::CheckMode;

CompileOptions options_for(CheckMode mode, int seg_regs = 3) {
  CompileOptions options;
  options.lower.mode = mode;
  options.lower.num_seg_regs = seg_regs;
  return options;
}

vm::RunResult compile_and_run(const std::string& source, CheckMode mode,
                              int seg_regs = 3) {
  CompileResult compiled = compile(source, options_for(mode, seg_regs));
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  if (!compiled.ok()) {
    return {};
  }
  return compiled.program->run();
}

constexpr const char* kSumProgram = R"(
int a[10];
int main() {
  int i;
  int sum = 0;
  for (i = 0; i < 10; i = i + 1) {
    a[i] = i * i;
  }
  for (i = 0; i < 10; i = i + 1) {
    sum = sum + a[i];
  }
  print_int(sum);
  return sum;
}
)";

TEST(Integration, SumOfSquaresRunsInAllModes) {
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kBcc,
                         CheckMode::kCash, CheckMode::kBoundInsn,
                         CheckMode::kEfence}) {
    vm::RunResult run = compile_and_run(kSumProgram, mode);
    EXPECT_TRUE(run.ok) << to_string(mode) << ": "
                        << (run.fault ? run.fault->detail : run.error);
    EXPECT_EQ(run.exit_code, 285) << to_string(mode);
    EXPECT_EQ(run.output, "285\n") << to_string(mode);
  }
}

TEST(Integration, CashUsesHardwareChecksForInLoopRefs) {
  CompileResult compiled = compile(kSumProgram, options_for(CheckMode::kCash));
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const passes::LowerStats& stats = compiled.program->lower_stats();
  EXPECT_EQ(stats.hw_checks, 2U);  // a[i] store + a[i] load
  EXPECT_EQ(stats.sw_checks, 0U);
  EXPECT_EQ(stats.seg_loads, 2U);  // one hoisted load per loop

  vm::RunResult run = compiled.program->run();
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.counters.hw_checked_accesses, 20U);
  EXPECT_EQ(run.counters.sw_checks, 0U);
  EXPECT_EQ(run.counters.seg_reg_loads, 2U);
}

TEST(Integration, BccInsertsSoftwareCheckEverywhere) {
  CompileResult compiled = compile(kSumProgram, options_for(CheckMode::kBcc));
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  EXPECT_EQ(compiled.program->lower_stats().sw_checks, 2U);
  vm::RunResult run = compiled.program->run();
  ASSERT_TRUE(run.ok);
  EXPECT_EQ(run.counters.sw_checks, 20U);
}

constexpr const char* kOverflowProgram = R"(
int buf[8];
int main() {
  int i;
  for (i = 0; i < 20; i = i + 1) {
    buf[i] = i;
  }
  return 0;
}
)";

TEST(Integration, CashCatchesOverflowViaSegmentLimit) {
  vm::RunResult run = compile_and_run(kOverflowProgram, CheckMode::kCash);
  EXPECT_FALSE(run.ok);
  ASSERT_TRUE(run.fault.has_value());
  EXPECT_TRUE(run.bound_violation());
  EXPECT_EQ(run.fault->kind, FaultKind::kGeneralProtection);
  // The first 8 stores are fine; the 9th (i == 8) must fault.
  EXPECT_EQ(run.counters.hw_checked_accesses, 9U);
}

TEST(Integration, BccCatchesOverflowViaSoftwareCheck) {
  vm::RunResult run = compile_and_run(kOverflowProgram, CheckMode::kBcc);
  EXPECT_FALSE(run.ok);
  ASSERT_TRUE(run.fault.has_value());
  EXPECT_EQ(run.fault->kind, FaultKind::kBoundRange);
}

TEST(Integration, NoCheckMissesOverflow) {
  // The overflow scribbles past buf into adjacent memory but nothing stops
  // it — the vulnerable baseline.
  vm::RunResult run = compile_and_run(kOverflowProgram, CheckMode::kNoCheck);
  EXPECT_TRUE(run.ok) << (run.fault ? run.fault->detail : run.error);
}

TEST(Integration, CashIsCheaperThanBccOnLongLoops) {
  // Cash pays a fixed set-up (per-program 543 + per-array 263 cycles) but
  // nothing per reference; BCC pays 6 cycles per reference. With enough
  // iterations Cash must win — the paper's central claim.
  constexpr const char* kLongLoop = R"(
int a[1000];
int main() {
  int i;
  int round;
  int sum = 0;
  for (round = 0; round < 20; round = round + 1) {
    for (i = 0; i < 1000; i = i + 1) {
      a[i] = i;
    }
    for (i = 0; i < 1000; i = i + 1) {
      sum = sum + a[i];
    }
  }
  return sum;
}
)";
  vm::RunResult gcc = compile_and_run(kLongLoop, CheckMode::kNoCheck);
  vm::RunResult cash = compile_and_run(kLongLoop, CheckMode::kCash);
  vm::RunResult bcc = compile_and_run(kLongLoop, CheckMode::kBcc);
  ASSERT_TRUE(gcc.ok && cash.ok && bcc.ok);
  EXPECT_LT(gcc.cycles, bcc.cycles);
  EXPECT_LT(cash.cycles, bcc.cycles);
  // Cash overhead over GCC must be a small fraction of BCC's overhead.
  const double cash_over = static_cast<double>(cash.cycles - gcc.cycles);
  const double bcc_over = static_cast<double>(bcc.cycles - gcc.cycles);
  EXPECT_LT(cash_over, 0.05 * bcc_over)
      << "cash +" << cash_over << " vs bcc +" << bcc_over;
}

constexpr const char* kMallocProgram = R"(
int main() {
  int *p;
  int i;
  int sum = 0;
  p = malloc(40);
  for (i = 0; i < 10; i = i + 1) {
    p[i] = i + 1;
  }
  for (i = 0; i < 10; i = i + 1) {
    sum = sum + p[i];
  }
  free(p);
  print_int(sum);
  return sum;
}
)";

TEST(Integration, MallocArraysWork) {
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kBcc,
                         CheckMode::kCash, CheckMode::kEfence}) {
    vm::RunResult run = compile_and_run(kMallocProgram, mode);
    EXPECT_TRUE(run.ok) << to_string(mode) << ": "
                        << (run.fault ? run.fault->detail : run.error);
    EXPECT_EQ(run.exit_code, 55) << to_string(mode);
  }
}

constexpr const char* kHeapOverflowProgram = R"(
int main() {
  int *p;
  int i;
  p = malloc(32);
  for (i = 0; i <= 8; i = i + 1) {
    p[i] = 7;
  }
  return 0;
}
)";

TEST(Integration, HeapOverflowCaughtByCash) {
  vm::RunResult run = compile_and_run(kHeapOverflowProgram, CheckMode::kCash);
  EXPECT_FALSE(run.ok);
  ASSERT_TRUE(run.fault.has_value());
  EXPECT_EQ(run.fault->kind, FaultKind::kGeneralProtection);
}

TEST(Integration, HeapOverflowCaughtByEfenceGuardPage) {
  vm::RunResult run =
      compile_and_run(kHeapOverflowProgram, CheckMode::kEfence);
  EXPECT_FALSE(run.ok);
  ASSERT_TRUE(run.fault.has_value());
  EXPECT_EQ(run.fault->kind, FaultKind::kPageFault);
}

constexpr const char* kPointerWalkProgram = R"(
int data[16];
int main() {
  int *p;
  int i;
  int sum = 0;
  for (i = 0; i < 16; i = i + 1) {
    data[i] = i;
  }
  p = data;
  for (i = 0; i < 16; i = i + 1) {
    sum = sum + *p;
    p++;
  }
  print_int(sum);
  return sum;
}
)";

TEST(Integration, PointerWalkWithIncrement) {
  for (CheckMode mode :
       {CheckMode::kNoCheck, CheckMode::kBcc, CheckMode::kCash}) {
    vm::RunResult run = compile_and_run(kPointerWalkProgram, mode);
    EXPECT_TRUE(run.ok) << to_string(mode) << ": "
                        << (run.fault ? run.fault->detail : run.error);
    EXPECT_EQ(run.exit_code, 120) << to_string(mode);
  }
}

constexpr const char* kSpillProgram = R"(
int a[8]; int b[8]; int c[8]; int d[8]; int e[8];
int main() {
  int i;
  int sum = 0;
  for (i = 0; i < 8; i = i + 1) {
    a[i] = i; b[i] = i; c[i] = i; d[i] = i; e[i] = i;
  }
  for (i = 0; i < 8; i = i + 1) {
    sum = sum + a[i] + b[i] + c[i] + d[i] + e[i];
  }
  return sum;
}
)";

TEST(Integration, MoreArraysThanSegRegsFallsBackToSoftware) {
  CompileResult compiled =
      compile(kSpillProgram, options_for(CheckMode::kCash, 3));
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const passes::LowerStats& stats = compiled.program->lower_stats();
  // 5 arrays per loop, 3 registers: d and e spill in both loops.
  EXPECT_EQ(stats.spilled_outer_loops, 2U);
  EXPECT_GT(stats.sw_checks, 0U);
  EXPECT_GT(stats.hw_checks, 0U);

  vm::RunResult run = compiled.program->run();
  ASSERT_TRUE(run.ok) << (run.fault ? run.fault->detail : run.error);
  EXPECT_EQ(run.exit_code, 8 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7) * 5 / 8);
}

TEST(Integration, FourSegRegsEliminateSpill) {
  CompileResult three =
      compile(kSpillProgram, options_for(CheckMode::kCash, 3));
  CompileResult four =
      compile(kSpillProgram, options_for(CheckMode::kCash, 4));
  ASSERT_TRUE(three.ok() && four.ok());
  EXPECT_LT(four.program->lower_stats().sw_checks,
            three.program->lower_stats().sw_checks);
  vm::RunResult run3 = three.program->run();
  vm::RunResult run4 = four.program->run();
  ASSERT_TRUE(run3.ok && run4.ok);
  EXPECT_EQ(run3.exit_code, run4.exit_code);
  EXPECT_LT(run4.counters.sw_checks, run3.counters.sw_checks);
}

TEST(Integration, CompileErrorsAreReported) {
  CompileResult bad = compile("int main() { return x; }");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("undeclared"), std::string::npos) << bad.error;
}

TEST(Integration, FloatArithmetic) {
  constexpr const char* kFloatProgram = R"(
float v[4];
int main() {
  int i;
  float sum = 0.0;
  for (i = 0; i < 4; i = i + 1) {
    v[i] = 1.5;
  }
  for (i = 0; i < 4; i = i + 1) {
    sum = sum + v[i];
  }
  print_float(sum);
  return 0;
}
)";
  vm::RunResult run = compile_and_run(kFloatProgram, CheckMode::kCash);
  ASSERT_TRUE(run.ok) << (run.fault ? run.fault->detail : run.error);
  EXPECT_EQ(run.output, "6\n");
}

} // namespace
} // namespace cash
