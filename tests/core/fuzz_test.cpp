// Differential fuzzing: randomly generated in-bounds MiniC programs must
// compile in every mode, run to completion, and produce identical output —
// with and without the optimiser. Any divergence is a bug somewhere in the
// front end, optimiser, lowering, runtime, or interpreter.
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "workloads/fuzz.hpp"

namespace cash {
namespace {

using passes::CheckMode;

class Fuzz : public testing::TestWithParam<int> {};

TEST_P(Fuzz, AllModesAndOptLevelsAgree) {
  const std::uint32_t seed = static_cast<std::uint32_t>(GetParam());
  const std::string source = workloads::generate_fuzz_program(seed);

  std::string reference;
  bool have_reference = false;
  for (bool optimize : {false, true}) {
    for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kBcc,
                           CheckMode::kCash, CheckMode::kBoundInsn,
                           CheckMode::kEfence}) {
      CompileOptions options;
      options.lower.mode = mode;
      options.optimize = optimize;
      CompileResult compiled = compile(source, options);
      ASSERT_TRUE(compiled.ok())
          << "seed " << seed << " mode " << to_string(mode) << ":\n"
          << compiled.error << "\n--- source ---\n"
          << source;
      const vm::RunResult run = compiled.program->run();
      ASSERT_TRUE(run.ok) << "seed " << seed << " mode " << to_string(mode)
                          << " opt=" << optimize << ": "
                          << (run.fault ? run.fault->detail : run.error)
                          << "\n--- source ---\n"
                          << source;
      if (!have_reference) {
        reference = run.output;
        have_reference = true;
      } else {
        EXPECT_EQ(run.output, reference)
            << "seed " << seed << " mode " << to_string(mode)
            << " opt=" << optimize << " diverged\n--- source ---\n"
            << source;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, testing::Range(1, 41));

// The same differential property, driven through the parallel fan-out:
// run_fuzz_matrix shards the (seed x config) cells across host threads
// ($CASH_JOBS) and reports divergences in deterministic (seed, config)
// order. Fresh seed range, extending coverage past the serial suite above.
TEST(FuzzMatrix, ParallelSweepSeeds41To61FindsNoDivergence) {
  const std::vector<workloads::FuzzDivergence> divergences =
      workloads::run_fuzz_matrix(41, 61);
  for (const workloads::FuzzDivergence& d : divergences) {
    ADD_FAILURE() << "seed " << d.seed << " [" << d.config
                  << "]: " << d.detail << "\n--- source ---\n"
                  << workloads::generate_fuzz_program(d.seed);
  }
}

TEST(FuzzMatrix, ConfigsCoverTheThirtyCellMatrix) {
  const std::vector<workloads::FuzzConfig>& configs =
      workloads::fuzz_configs();
  // {optimize off, on} x five modes, the same ten with elision on, then
  // the first ten again with the hot-trace engine off.
  ASSERT_EQ(configs.size(), 30u);
  // Cell 0 is the reference every other cell is compared against.
  EXPECT_EQ(configs[0].mode, CheckMode::kNoCheck);
  EXPECT_FALSE(configs[0].optimize);
  EXPECT_FALSE(configs[0].elide);
  EXPECT_TRUE(configs[0].trace);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(configs[i].elide) << i;
    EXPECT_TRUE(configs[i + 10].elide) << i;
    EXPECT_EQ(configs[i].mode, configs[i + 10].mode) << i;
    EXPECT_EQ(configs[i].optimize, configs[i + 10].optimize) << i;
    // The trace-off arm mirrors the base arm cell for cell.
    EXPECT_TRUE(configs[i].trace) << i;
    EXPECT_TRUE(configs[i + 10].trace) << i;
    EXPECT_FALSE(configs[i + 20].trace) << i;
    EXPECT_FALSE(configs[i + 20].elide) << i;
    EXPECT_EQ(configs[i].mode, configs[i + 20].mode) << i;
    EXPECT_EQ(configs[i].optimize, configs[i + 20].optimize) << i;
  }
}

TEST(FuzzGenerator, IsDeterministic) {
  EXPECT_EQ(workloads::generate_fuzz_program(7),
            workloads::generate_fuzz_program(7));
  EXPECT_NE(workloads::generate_fuzz_program(7),
            workloads::generate_fuzz_program(8));
}

} // namespace
} // namespace cash
