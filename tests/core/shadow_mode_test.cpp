// Tests of the concurrent (shadow-processor) checking mode — the strongest
// software competitor in the paper's related work [6]: the main CPU only
// enqueues addresses (1 cycle per reference); a shadow processor runs the
// derived checking program in parallel.
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "workloads/workloads.hpp"

namespace cash {
namespace {

using passes::CheckMode;

vm::RunResult run_mode(const std::string& source, CheckMode mode) {
  CompileOptions options;
  options.lower.mode = mode;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  return compiled.program->run();
}

TEST(ShadowMode, ComputesTheSameResult) {
  const std::string source = workloads::matmul_source(16);
  const vm::RunResult base = run_mode(source, CheckMode::kNoCheck);
  const vm::RunResult shadow = run_mode(source, CheckMode::kShadow);
  ASSERT_TRUE(base.ok && shadow.ok);
  EXPECT_EQ(base.output, shadow.output);
}

TEST(ShadowMode, CatchesOverflows) {
  constexpr const char* kOverflow = R"(
int buf[8];
int main() {
  int i;
  for (i = 0; i < 12; i++) {
    buf[i] = i;
  }
  return 0;
}
)";
  const vm::RunResult r = run_mode(kOverflow, CheckMode::kShadow);
  EXPECT_FALSE(r.ok);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_EQ(r.fault->kind, FaultKind::kBoundRange);
  EXPECT_NE(r.fault->detail.find("shadow"), std::string::npos);
}

TEST(ShadowMode, MainCpuPaysOnlyEnqueueCycles) {
  const std::string source = workloads::matmul_source(24);
  const vm::RunResult bcc = run_mode(source, CheckMode::kBcc);
  const vm::RunResult shadow = run_mode(source, CheckMode::kShadow);
  ASSERT_TRUE(bcc.ok && shadow.ok);
  // Identical check counts, but the shadow main CPU pays 1 cycle per check
  // instead of 6.
  EXPECT_EQ(shadow.counters.sw_checks, bcc.counters.sw_checks);
  EXPECT_EQ(shadow.breakdown.checking, shadow.counters.sw_checks);
  EXPECT_EQ(bcc.breakdown.checking, bcc.counters.sw_checks * 6);
  EXPECT_LT(shadow.cycles, bcc.cycles);
  // The check work did not vanish — it moved to the shadow processor.
  EXPECT_GT(shadow.shadow_cycles, 0U);
  EXPECT_EQ(shadow.shadow_cycles, shadow.counters.sw_checks * 8);
  EXPECT_EQ(bcc.shadow_cycles, 0U);
}

TEST(ShadowMode, EffectiveCyclesTakeTheBottleneck) {
  const std::string source = workloads::matmul_source(24);
  const vm::RunResult shadow = run_mode(source, CheckMode::kShadow);
  ASSERT_TRUE(shadow.ok);
  EXPECT_EQ(shadow.effective_cycles(),
            std::max(shadow.cycles, shadow.shadow_cycles));
  // For a check-dense kernel the shadow processor can itself become the
  // bottleneck — the limitation Cash does not have.
  const vm::RunResult cash_r = run_mode(source, CheckMode::kCash);
  ASSERT_TRUE(cash_r.ok);
  EXPECT_LT(cash_r.effective_cycles(), shadow.effective_cycles() * 2);
}

TEST(ShadowMode, CashStillBeatsShadowOnWallClock) {
  // The paper's claim: concurrent checking was the best software approach
  // "until the arrival of Cash". Cash needs no second processor AND has
  // lower overhead on the main one.
  const std::string source = workloads::matmul_source(32);
  const vm::RunResult gcc = run_mode(source, CheckMode::kNoCheck);
  const vm::RunResult shadow = run_mode(source, CheckMode::kShadow);
  const vm::RunResult cash_r = run_mode(source, CheckMode::kCash);
  ASSERT_TRUE(gcc.ok && shadow.ok && cash_r.ok);
  const auto overhead = [&](std::uint64_t cycles) {
    return static_cast<double>(cycles) - static_cast<double>(gcc.cycles);
  };
  EXPECT_LT(overhead(cash_r.effective_cycles()),
            overhead(shadow.effective_cycles()));
}

} // namespace
} // namespace cash
