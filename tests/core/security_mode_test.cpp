// Section 3.8's security-only mode: skipping read checks halves the
// resource pressure but must still stop every write overflow (all known
// buffer-overflow attacks write). These tests pin the asymmetry down.
#include <gtest/gtest.h>

#include "core/cash.hpp"

namespace cash {
namespace {

using passes::CheckMode;

vm::RunResult run_security(const std::string& source, bool check_reads) {
  CompileOptions options;
  options.lower.mode = CheckMode::kCash;
  options.lower.check_reads = check_reads;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  return compiled.program->run();
}

constexpr const char* kWriteOverflow = R"(
int buf[8];
int main() {
  int i;
  for (i = 0; i < 12; i++) {
    buf[i] = i;
  }
  return 0;
}
)";

constexpr const char* kReadOverflow = R"(
int buf[8];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 12; i++) {
    s = s + buf[i];
  }
  return s;
}
)";

TEST(SecurityMode, WriteOverflowCaughtEitherWay) {
  for (bool check_reads : {true, false}) {
    const vm::RunResult r = run_security(kWriteOverflow, check_reads);
    EXPECT_FALSE(r.ok) << "check_reads=" << check_reads;
    ASSERT_TRUE(r.fault.has_value());
    EXPECT_TRUE(r.bound_violation());
  }
}

TEST(SecurityMode, ReadOverflowOnlyCaughtWithReadChecks) {
  const vm::RunResult full = run_security(kReadOverflow, true);
  EXPECT_FALSE(full.ok);
  EXPECT_TRUE(full.fault.has_value());

  const vm::RunResult security = run_security(kReadOverflow, false);
  // The documented §3.8 trade-off: reads go unchecked.
  EXPECT_TRUE(security.ok)
      << (security.fault ? security.fault->detail : security.error);
}

TEST(SecurityMode, NeverCostsMoreThanFullChecking) {
  constexpr const char* kMixed = R"(
int a[32]; int b[32]; int c[32]; int d[32];
int main() {
  int i; int s = 0;
  for (i = 0; i < 32; i++) {
    d[i] = a[i] + b[i] + c[i];
  }
  for (i = 0; i < 32; i++) {
    s = s + d[i];
  }
  return s;
}
)";
  const vm::RunResult full = run_security(kMixed, true);
  const vm::RunResult security = run_security(kMixed, false);
  ASSERT_TRUE(full.ok && security.ok);
  EXPECT_EQ(full.exit_code, security.exit_code);
  EXPECT_LE(security.cycles, full.cycles);
  EXPECT_LE(security.counters.sw_checks, full.counters.sw_checks);
  EXPECT_LE(security.counters.seg_reg_loads, full.counters.seg_reg_loads);
}

TEST(SecurityMode, BccAlsoSupportsWriteOnlyChecking) {
  CompileOptions options;
  options.lower.mode = CheckMode::kBcc;
  options.lower.check_reads = false;
  CompileResult compiled = compile(kReadOverflow, options);
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled.program->run().ok);

  CompileResult writes = compile(kWriteOverflow, options);
  ASSERT_TRUE(writes.ok());
  EXPECT_FALSE(writes.program->run().ok);
}

TEST(Vm, RunawayRecursionReportsStackOverflow) {
  constexpr const char* kDeep = R"(
int dive(int n) {
  int pad[256];
  pad[0] = n;
  return dive(n + 1) + pad[0];
}
int main() { return dive(0); }
)";
  CompileOptions options;
  options.lower.mode = CheckMode::kNoCheck;
  CompileResult compiled = compile(kDeep, options);
  ASSERT_TRUE(compiled.ok());
  const vm::RunResult r = compiled.program->run();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("stack overflow"), std::string::npos) << r.error;
}

} // namespace
} // namespace cash
