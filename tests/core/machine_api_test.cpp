// Tests of the Machine lifecycle API: repeated runs, white-box accessors,
// per-run accounting, and the one-time program-initialisation charge.
#include <gtest/gtest.h>

#include "core/cash.hpp"

namespace cash {
namespace {

constexpr const char* kCounter = R"(
int counter;
int bump[4];
int main() {
  int i;
  counter = counter + 1;
  for (i = 0; i < 4; i++) {
    bump[i] = bump[i] + counter;
  }
  return counter;
}
)";

TEST(MachineApi, GlobalStatePersistsAcrossRuns) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kCounter, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  auto machine = compiled.program->make_machine();
  EXPECT_EQ(machine->run().exit_code, 1);
  EXPECT_EQ(machine->run().exit_code, 2);
  EXPECT_EQ(machine->run().exit_code, 3);
}

TEST(MachineApi, ProgramInitIsChargedOnlyToTheFirstRun) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kCounter, options);
  ASSERT_TRUE(compiled.ok());
  auto machine = compiled.program->make_machine();
  const vm::RunResult first = machine->run();
  const vm::RunResult second = machine->run();
  ASSERT_TRUE(first.ok && second.ok);
  // First run carries the 543-cycle program set-up + global segment init.
  EXPECT_GT(first.cycles, second.cycles + 500);
  EXPECT_GT(first.breakdown.runtime, second.breakdown.runtime);
}

TEST(MachineApi, FreshMachinesAreIndependent) {
  CompileOptions options;
  CompileResult compiled = compile(kCounter, options);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled.program->run().exit_code, 1);
  EXPECT_EQ(compiled.program->run().exit_code, 1); // new machine each time
}

TEST(MachineApi, WhiteBoxAccessorsExposeTheHardware) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kCounter, options);
  ASSERT_TRUE(compiled.ok());
  auto machine = compiled.program->make_machine();
  ASSERT_TRUE(machine->run().ok);
  // The global array's segment is installed in the LDT; DS holds the flat
  // segment; the 3-entry cache is intact.
  EXPECT_TRUE(machine->segmentation().reg(x86seg::SegReg::kDs).valid);
  EXPECT_EQ(machine->segment_manager().stats().segments_in_use, 1U);
  EXPECT_GE(machine->segmentation().load_count(), 1U);
  // main clobbered ES for the bump[] loop, and its epilogue restored the
  // flat segment (the Section 3.7 save/restore discipline) — observable
  // through the hidden part.
  const auto& es = machine->segmentation().reg(x86seg::SegReg::kEs);
  ASSERT_TRUE(es.valid);
  EXPECT_EQ(es.cached.span(), 1ULL << 32);
}

TEST(MachineApi, RunFunctionExecutesAnyZeroArgFunction) {
  CompileOptions options;
  CompileResult compiled = compile(R"(
int forty_two() { return 42; }
int main() { return 0; }
)",
                                   options);
  ASSERT_TRUE(compiled.ok());
  auto machine = compiled.program->make_machine();
  EXPECT_EQ(machine->run_function("forty_two").exit_code, 42);
  EXPECT_FALSE(machine->run_function("missing").ok);
}

TEST(MachineApi, CountersAreFreshPerRunButStatsAccumulate) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult compiled = compile(kCounter, options);
  ASSERT_TRUE(compiled.ok());
  auto machine = compiled.program->make_machine();
  const vm::RunResult first = machine->run();
  const vm::RunResult second = machine->run();
  // Per-run counters are equal (same work each run)...
  EXPECT_EQ(first.counters.hw_checked_accesses,
            second.counters.hw_checked_accesses);
  // ...while machine-lifetime segment stats accumulate monotonically.
  EXPECT_GE(second.segment_stats.alloc_requests,
            first.segment_stats.alloc_requests);
}

} // namespace
} // namespace cash
