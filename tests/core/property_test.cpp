// Property-style sweeps over the bound-checking invariants:
//
//  P1. Soundness of execution: on in-bounds programs, every checking mode
//      computes exactly what the unchecked baseline computes.
//  P2. Detection: Cash and BCC abort any loop access outside [0, N) of a
//      (small) array — at the first offending access.
//  P3. Figure 2: for arrays > 1 MB, Cash's upper bound stays byte-precise
//      while negative offsets inside the slack go undetected.
//  P4. The segment span computed for any size covers the object and wastes
//      less than one page.
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "workloads/workloads.hpp"
#include "x86seg/descriptor.hpp"

namespace cash {
namespace {

using passes::CheckMode;

std::string indexed_write_program(int array_elems, int first, int last) {
  return workloads::expand_template(R"(
int a[${N}];
int main() {
  int i;
  for (i = ${FIRST}; i <= ${LAST}; i++) {
    a[i] = i;
  }
  return 0;
}
)",
                                    {{"N", std::to_string(array_elems)},
                                     {"FIRST", std::to_string(first)},
                                     {"LAST", std::to_string(last)}});
}

vm::RunResult run_mode(const std::string& source, CheckMode mode) {
  CompileOptions options;
  options.lower.mode = mode;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  return compiled.program->run();
}

// --- P2: detection sweep over overflow distances -------------------------

class OverflowDistance : public testing::TestWithParam<int> {};

TEST_P(OverflowDistance, CashAndBccCatchUpperOverflow) {
  const int overshoot = GetParam();
  const std::string source = indexed_write_program(16, 0, 15 + overshoot);
  for (CheckMode mode : {CheckMode::kCash, CheckMode::kBcc}) {
    const vm::RunResult r = run_mode(source, mode);
    if (overshoot == 0) {
      EXPECT_TRUE(r.ok) << to_string(mode);
    } else {
      EXPECT_FALSE(r.ok) << to_string(mode) << " overshoot " << overshoot;
      ASSERT_TRUE(r.fault.has_value());
      EXPECT_TRUE(r.bound_violation());
    }
  }
}

TEST_P(OverflowDistance, CashCatchesLowerUnderflowOnSmallArrays) {
  const int undershoot = GetParam();
  const std::string source = indexed_write_program(16, -undershoot, 15);
  const vm::RunResult r = run_mode(source, CheckMode::kCash);
  if (undershoot == 0) {
    EXPECT_TRUE(r.ok);
  } else {
    EXPECT_FALSE(r.ok) << "undershoot " << undershoot;
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, OverflowDistance,
                         testing::Values(0, 1, 2, 7, 64, 1000));

// --- P2b: the fault fires at the FIRST offending access ------------------

TEST(Detection, FirstOffendingAccessAborts) {
  for (int n : {4, 8, 32, 100}) {
    const std::string source = indexed_write_program(n, 0, n + 5);
    const vm::RunResult r = run_mode(source, CheckMode::kCash);
    ASSERT_FALSE(r.ok) << n;
    // Exactly n in-bounds accesses succeeded, the (n+1)-th faulted.
    EXPECT_EQ(r.counters.hw_checked_accesses,
              static_cast<std::uint64_t>(n) + 1)
        << n;
  }
}

// --- P1: cross-mode equivalence on random in-bounds programs --------------

class RandomKernel : public testing::TestWithParam<int> {};

TEST_P(RandomKernel, AllModesAgree) {
  // A little self-randomising kernel: sizes and strides derived from the
  // parameter, always in bounds.
  const int seed = GetParam();
  const int n = 16 + (seed * 13) % 48;
  const int stride = 1 + seed % 5;
  const std::string source = workloads::expand_template(R"(
int a[${N}]; int b[${N}];
int main() {
  int i; int s = 0;
  for (i = 0; i < ${N}; i++) {
    a[i] = (i * ${STRIDE} + ${SEED}) % 97;
  }
  for (i = 0; i < ${N}; i++) {
    b[(i * ${STRIDE}) % ${N}] = a[i] * 2;
  }
  for (i = 0; i < ${N}; i++) {
    s = s + b[i] + a[(i + ${SEED}) % ${N}];
  }
  print_int(s);
  return s;
}
)",
                                                        {
                                                            {"N", std::to_string(n)},
                                                            {"STRIDE", std::to_string(stride)},
                                                            {"SEED", std::to_string(seed)},
                                                        });
  const vm::RunResult base = run_mode(source, CheckMode::kNoCheck);
  ASSERT_TRUE(base.ok);
  for (CheckMode mode : {CheckMode::kBcc, CheckMode::kCash,
                         CheckMode::kBoundInsn, CheckMode::kEfence}) {
    const vm::RunResult r = run_mode(source, mode);
    EXPECT_TRUE(r.ok) << to_string(mode);
    EXPECT_EQ(r.output, base.output) << to_string(mode) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernel, testing::Range(1, 13));

// --- P3: Figure 2 slack sweep ---------------------------------------------

TEST(Fig2Property, LargeArrayLowerBoundSlackIsExactlyTheAlignmentGap) {
  // 300000 ints = 1.2 MB: page-granular segment. The slack below the
  // array is span - size; indices within it escape, below it fault.
  const std::uint32_t size = 300000 * 4;
  const std::uint32_t span = ((size + 4095) / 4096) * 4096;
  const int slack_words = static_cast<int>((span - size) / 4);
  ASSERT_GT(slack_words, 0);

  // Write just inside the slack: undetected (the Figure 2 imprecision).
  {
    const std::string source =
        indexed_write_program(300000, -slack_words, 10);
    const vm::RunResult r = run_mode(source, CheckMode::kCash);
    EXPECT_TRUE(r.ok) << (r.fault ? r.fault->detail : r.error);
  }
  // One word below the slack: detected.
  {
    const std::string source =
        indexed_write_program(300000, -(slack_words + 1), 10);
    const vm::RunResult r = run_mode(source, CheckMode::kCash);
    EXPECT_FALSE(r.ok);
  }
  // Upper bound: byte-precise even for the large array.
  {
    const std::string source = indexed_write_program(300000, 299995, 300000);
    const vm::RunResult r = run_mode(source, CheckMode::kCash);
    EXPECT_FALSE(r.ok);
  }
  {
    const std::string source = indexed_write_program(300000, 299995, 299999);
    const vm::RunResult r = run_mode(source, CheckMode::kCash);
    EXPECT_TRUE(r.ok) << (r.fault ? r.fault->detail : r.error);
  }
}

// --- P4: descriptor span property over many sizes --------------------------

class SpanProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(SpanProperty, SegmentCoversObjectAndWastesLessThanAPage) {
  const std::uint32_t size = GetParam();
  const std::uint32_t base = 0x10000000 + (size % 4096);
  const auto d = x86seg::SegmentDescriptor::for_array(base, size);
  // Covers every byte of the object.
  EXPECT_TRUE(d.offset_in_limit(base - d.base(), 1));
  EXPECT_TRUE(d.offset_in_limit(base + size - 1 - d.base(), 1));
  // Never admits the byte one past the end.
  EXPECT_FALSE(d.offset_in_limit(base + size - d.base(), 1));
  // Wastes less than a page below.
  EXPECT_LT(base - d.base(), 4096U);
  EXPECT_EQ(static_cast<std::uint64_t>(d.base()) + d.span(),
            static_cast<std::uint64_t>(base) + size);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SpanProperty,
    testing::Values(1U, 2U, 3U, 4U, 100U, 4095U, 4096U, 4097U, 65536U,
                    (1U << 20) - 1, 1U << 20, (1U << 20) + 1,
                    (1U << 20) + 4095, (1U << 20) + 4096, 3U << 20,
                    (16U << 20) + 123));

} // namespace
} // namespace cash
