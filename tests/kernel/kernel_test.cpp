// Tests of the simulated kernel: LDT management through the two entry
// points, their cycle costs, and the Section 3.8 security invariants.
#include <gtest/gtest.h>

#include "common/costs.hpp"
#include "kernel/kernel_sim.hpp"

namespace cash::kernel {
namespace {

using x86seg::SegmentDescriptor;

TEST(KernelSim, GdtHasFlatSegments) {
  KernelSim kern;
  auto user_data = kern.gdt().lookup(flat_user_data_selector());
  ASSERT_TRUE(user_data.ok());
  EXPECT_EQ(user_data.value().base(), 0U);
  EXPECT_EQ(user_data.value().span(), 1ULL << 32);
  EXPECT_EQ(user_data.value().dpl(), 3);
}

TEST(KernelSim, ModifyLdtCosts781Cycles) {
  KernelSim kern;
  const Pid pid = kern.create_process();
  ASSERT_TRUE(
      kern.modify_ldt(pid, 1, SegmentDescriptor::for_array(0x1000, 64)).ok());
  EXPECT_EQ(kern.account(pid).kernel_cycles, costs::kModifyLdtSyscall);
  EXPECT_EQ(kern.account(pid).modify_ldt_calls, 1U);
}

TEST(KernelSim, CallGateCosts253Cycles) {
  KernelSim kern;
  const Pid pid = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(pid).ok());
  ASSERT_TRUE(
      kern.cash_modify_ldt(pid, 1, SegmentDescriptor::for_array(0x1000, 64))
          .ok());
  EXPECT_EQ(kern.account(pid).kernel_cycles, costs::kCallGate);
  EXPECT_EQ(kern.account(pid).call_gate_calls, 1U);
}

TEST(KernelSim, CallGateWithoutInstallFaults) {
  KernelSim kern;
  const Pid pid = kern.create_process();
  EXPECT_FALSE(
      kern.cash_modify_ldt(pid, 1, SegmentDescriptor::for_array(0x1000, 64))
          .ok());
}

TEST(KernelSim, GateInstallsCallGateAtEntry0) {
  KernelSim kern;
  const Pid pid = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(pid).ok());
  auto raw = kern.ldt(pid).read_raw(0);
  ASSERT_TRUE(raw.ok());
  auto decoded = SegmentDescriptor::decode(raw.value());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind(), x86seg::DescriptorKind::kCallGate);
}

TEST(KernelSim, SecurityRefusesCallGateInstallation) {
  // Section 3.8: cash_modify_ldt guarantees no call gate can be created.
  KernelSim kern;
  const Pid pid = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(pid).ok());
  EXPECT_FALSE(
      kern.cash_modify_ldt(pid, 7,
                           SegmentDescriptor::call_gate(0x08, 0xC0100000, 3, 0))
          .ok());
  EXPECT_FALSE(kern.modify_ldt(pid, 7,
                               SegmentDescriptor::call_gate(0x08, 0, 3, 0))
                   .ok());
}

TEST(KernelSim, SecurityRefusesPrivilegedSegments) {
  KernelSim kern;
  const Pid pid = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(pid).ok());
  EXPECT_FALSE(
      kern.cash_modify_ldt(
              pid, 7, SegmentDescriptor::byte_granular_data(0, 64, true, 0))
          .ok());
}

TEST(KernelSim, SecurityRefusesEntry0Overwrite) {
  KernelSim kern;
  const Pid pid = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(pid).ok());
  EXPECT_FALSE(
      kern.cash_modify_ldt(pid, 0, SegmentDescriptor::for_array(0x1000, 64))
          .ok());
}

TEST(KernelSim, ProcessesHaveIndependentLdts) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(a).ok());
  ASSERT_TRUE(
      kern.cash_modify_ldt(a, 3, SegmentDescriptor::for_array(0x1000, 64))
          .ok());
  EXPECT_EQ(kern.ldt(a).present_count(), 2U); // gate + array
  EXPECT_EQ(kern.ldt(b).present_count(), 0U);
}

TEST(KernelSim, UnknownPidThrows) {
  KernelSim kern;
  EXPECT_THROW(kern.ldt(99), std::invalid_argument);
  EXPECT_THROW((void)kern.account(99), std::invalid_argument);
}

TEST(KernelSim, DestroyProcessReleasesState) {
  KernelSim kern;
  const Pid pid = kern.create_process();
  kern.destroy_process(pid);
  EXPECT_THROW(kern.ldt(pid), std::invalid_argument);
}

} // namespace
} // namespace cash::kernel
