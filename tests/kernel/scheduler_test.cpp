// Multi-process kernel conformance (DESIGN.md §10): cross-process selector
// rejection, independent per-process LDT walls, the per-process free-list /
// cache / global-fallback order against costs.hpp, the round-robin
// scheduler's quantum and charging rules, and the shared LDT slot budget.
#include <gtest/gtest.h>

#include "common/costs.hpp"
#include "common/diagnostics.hpp"
#include "kernel/kernel_sim.hpp"
#include "runtime/segment_manager.hpp"

namespace cash::kernel {
namespace {

using runtime::SegmentManager;
using x86seg::SegmentDescriptor;
using x86seg::Selector;

// --- Cross-process selector rejection -----------------------------------

TEST(ProcessIsolation, SelectorFromAnotherProcessIsRefused) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(a).ok());
  ASSERT_TRUE(
      kern.cash_modify_ldt(a, 1, SegmentDescriptor::for_array(0x1000, 64))
          .ok());

  const Selector sel = Selector::make(1, /*local=*/true, /*rpl=*/3);
  auto own = kern.resolve_selector(a, sel);
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own.value().base(), 0x1000U);

  // The same selector names nothing in process B: its LDT entry 1 was
  // never installed, so the segment-register load takes a #GP.
  auto cross = kern.resolve_selector(b, sel);
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(cross.fault().kind, FaultKind::kGeneralProtection);
  EXPECT_EQ(cross.fault().selector, sel.raw());
}

TEST(ProcessIsolation, CrossProcessFaultMessageIsGolden) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(a).ok());
  ASSERT_TRUE(
      kern.cash_modify_ldt(a, 1, SegmentDescriptor::for_array(0x2000, 32))
          .ok());
  auto cross =
      kern.resolve_selector(b, Selector::make(1, /*local=*/true, /*rpl=*/3));
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(format_fault(cross.fault()),
            "#GP general-protection fault: selector names no live descriptor "
            "in this process (segment handles are process-private) "
            "(selector 0xf)");
}

TEST(ProcessIsolation, GdtSelectorsResolveInEveryProcess) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  // The flat user data segment is shared infrastructure, not a handle.
  for (Pid pid : {a, b}) {
    auto flat = kern.resolve_selector(pid, flat_user_data_selector());
    ASSERT_TRUE(flat.ok());
    EXPECT_EQ(flat.value().span(), 1ULL << 32);
  }
}

// --- Independent per-process LDT walls ----------------------------------

TEST(ProcessIsolation, EachProcessHitsItsOwnLdtWall) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  SegmentManager sa(kern, a);
  SegmentManager sb(kern, b);
  sa.initialize();
  sb.initialize();

  // Fill process A to its 8191-entry wall (entry 0 is the call gate).
  for (int i = 0; i < 8191; ++i) {
    SegmentManager::Allocation al =
        sa.allocate(0x10000U + static_cast<std::uint32_t>(i) * 0x100U, 64);
    ASSERT_FALSE(al.global_fallback) << "A fell back at " << i;
  }
  SegmentManager::Allocation wall = sa.allocate(0x4000000, 64);
  EXPECT_TRUE(wall.global_fallback);
  EXPECT_EQ(sa.stats().global_fallbacks, 1U);

  // B's free list is untouched by A's exhaustion: same wall, same place.
  for (int i = 0; i < 8191; ++i) {
    SegmentManager::Allocation al =
        sb.allocate(0x10000U + static_cast<std::uint32_t>(i) * 0x100U, 64);
    ASSERT_FALSE(al.global_fallback) << "B fell back at " << i;
  }
  EXPECT_TRUE(sb.allocate(0x4000000, 64).global_fallback);
  EXPECT_EQ(kern.ldt(a).present_count(), kern.ldt(b).present_count());
}

TEST(ProcessIsolation, FreeListCacheFallbackOrderIsPerProcess) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  SegmentManager sa(kern, a);
  SegmentManager sb(kern, b);
  EXPECT_EQ(sa.initialize(), costs::kPerProgramSetup);
  EXPECT_EQ(sb.initialize(), costs::kPerProgramSetup);

  // Fresh allocation: off the free list, through the call gate, at the
  // paper's per-array set-up cost.
  SegmentManager::Allocation first = sa.allocate(0x1000, 128);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.cycles, costs::kPerArraySetup);

  // Release feeds the 3-entry cache without entering the kernel...
  EXPECT_EQ(sa.release(first.ldt_index, 0x1000, 128), costs::kPerArrayTeardown);

  // ...and B's cache is not warmed by A's release: same (base, limit) is a
  // miss there, but a hit in A.
  SegmentManager::Allocation miss_in_b = sb.allocate(0x1000, 128);
  EXPECT_FALSE(miss_in_b.cache_hit);
  EXPECT_EQ(miss_in_b.cycles, costs::kPerArraySetup);
  SegmentManager::Allocation hit_in_a = sa.allocate(0x1000, 128);
  EXPECT_TRUE(hit_in_a.cache_hit);
  EXPECT_EQ(hit_in_a.cycles, costs::kSegCacheHit);
  EXPECT_EQ(hit_in_a.ldt_index, first.ldt_index);
}

// --- Round-robin scheduler ----------------------------------------------

TEST(Scheduler, RotatesOnQuantumExpiryAndChargesIncoming) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  kern.sched_configure({100});
  kern.sched_attach(a);
  kern.sched_attach(b);
  ASSERT_EQ(kern.sched_current(), a);

  EXPECT_EQ(kern.sched_charge(99), 0U);
  EXPECT_EQ(kern.sched_quantum_used(), 99U);
  EXPECT_EQ(kern.sched_charge(1), costs::kContextSwitch);
  EXPECT_EQ(kern.sched_current(), b);
  EXPECT_EQ(kern.sched_quantum_used(), 0U);
  // The incoming process pays for the switch (address space + LDTR).
  EXPECT_EQ(kern.account(b).context_switches_in, 1U);
  EXPECT_EQ(kern.account(b).kernel_cycles, costs::kContextSwitch);
  EXPECT_EQ(kern.account(a).context_switches_in, 0U);
  EXPECT_EQ(kern.sched_stats().context_switches, 1U);
  EXPECT_EQ(kern.sched_stats().context_switch_cycles, costs::kContextSwitch);
  EXPECT_EQ(kern.sched_stats().quanta_expired, 1U);
}

TEST(Scheduler, OvershootCarriesAcrossQuanta) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  kern.sched_configure({100});
  kern.sched_attach(a);
  kern.sched_attach(b);
  // One oversized charge burns two full quanta and leaves 50 cycles of the
  // third: quantum accounting is a pure function of the cumulative stream,
  // not of how the driver slices its charges.
  EXPECT_EQ(kern.sched_charge(250), 2 * costs::kContextSwitch);
  EXPECT_EQ(kern.sched_stats().quanta_expired, 2U);
  EXPECT_EQ(kern.sched_quantum_used(), 50U);
  EXPECT_EQ(kern.sched_current(), a); // two rotations over two runnables
}

TEST(Scheduler, SoleProcessExpiresQuantaWithoutSwitching) {
  KernelSim kern;
  const Pid a = kern.create_process();
  kern.sched_configure({100});
  kern.sched_attach(a);
  EXPECT_EQ(kern.sched_charge(500), 0U);
  EXPECT_EQ(kern.sched_stats().quanta_expired, 5U);
  EXPECT_EQ(kern.sched_stats().context_switches, 0U);
  EXPECT_EQ(kern.account(a).context_switches_in, 0U);
}

TEST(Scheduler, YieldResetsQuantumAndRotates) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  kern.sched_configure({100});
  kern.sched_attach(a);
  kern.sched_attach(b);
  kern.sched_charge(40);
  EXPECT_EQ(kern.sched_yield(), costs::kContextSwitch);
  EXPECT_EQ(kern.sched_current(), b);
  EXPECT_EQ(kern.sched_quantum_used(), 0U);
  EXPECT_EQ(kern.sched_stats().yields, 1U);
}

TEST(Scheduler, DetachingCurrentHandsOverWithoutACharge) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  const Pid c = kern.create_process();
  kern.sched_configure({100});
  kern.sched_attach(a);
  kern.sched_attach(b);
  kern.sched_attach(c);
  kern.sched_charge(30);
  kern.sched_detach(a); // process exit frees the CPU: no switch is charged
  EXPECT_EQ(kern.sched_current(), b);
  EXPECT_EQ(kern.sched_quantum_used(), 0U);
  EXPECT_EQ(kern.sched_stats().context_switches, 0U);
  EXPECT_EQ(kern.sched_runnable(), 2U);
  // Detaching a non-current process must not move the CPU.
  kern.sched_detach(c);
  EXPECT_EQ(kern.sched_current(), b);
  EXPECT_FALSE(kern.sched_attached(a));
  EXPECT_TRUE(kern.sched_attached(b));
}

TEST(Scheduler, DestroyProcessDetaches) {
  KernelSim kern;
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  kern.sched_attach(a);
  kern.sched_attach(b);
  kern.destroy_process(a);
  EXPECT_EQ(kern.sched_runnable(), 1U);
  EXPECT_EQ(kern.sched_current(), b);
}

// --- Shared LDT slot budget ---------------------------------------------

TEST(LdtBudget, FreshInstallsFaultPastTheBudget) {
  KernelSim kern;
  kern.set_ldt_slot_budget(3);
  const Pid a = kern.create_process();
  // The call gate at entry 0 is itself an installed descriptor: slot 1 of 3.
  ASSERT_TRUE(kern.set_ldt_callgate(a).ok());
  EXPECT_EQ(kern.ldt_slots_installed(), 1U);
  ASSERT_TRUE(
      kern.cash_modify_ldt(a, 1, SegmentDescriptor::for_array(0x1000, 64))
          .ok());
  ASSERT_TRUE(
      kern.cash_modify_ldt(a, 2, SegmentDescriptor::for_array(0x2000, 64))
          .ok());
  EXPECT_EQ(kern.ldt_slots_installed(), 3U);

  auto refused =
      kern.cash_modify_ldt(a, 3, SegmentDescriptor::for_array(0x3000, 64));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.fault().kind, FaultKind::kResourceExhausted);
  EXPECT_EQ(kern.ldt_slots_installed(), 3U);

  // Rewriting an already-installed entry is not a fresh install: the slot
  // is already paid for, so the budget does not apply.
  EXPECT_TRUE(
      kern.cash_modify_ldt(a, 1, SegmentDescriptor::for_array(0x9000, 128))
          .ok());
}

TEST(LdtBudget, BudgetIsSharedAndReturnedOnProcessExit) {
  KernelSim kern;
  kern.set_ldt_slot_budget(4);
  const Pid a = kern.create_process();
  const Pid b = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(a).ok());
  ASSERT_TRUE(kern.set_ldt_callgate(b).ok());
  ASSERT_TRUE(
      kern.cash_modify_ldt(a, 1, SegmentDescriptor::for_array(0x1000, 64))
          .ok());
  ASSERT_TRUE(
      kern.cash_modify_ldt(a, 2, SegmentDescriptor::for_array(0x2000, 64))
          .ok());
  // A drained the shared budget (two gates + two arrays); B's fresh
  // install is refused.
  EXPECT_FALSE(
      kern.cash_modify_ldt(b, 1, SegmentDescriptor::for_array(0x3000, 64))
          .ok());
  // A's exit returns its three slots; B fits again.
  kern.destroy_process(a);
  EXPECT_EQ(kern.ldt_slots_installed(), 1U);
  EXPECT_TRUE(
      kern.cash_modify_ldt(b, 1, SegmentDescriptor::for_array(0x3000, 64))
          .ok());
}

TEST(LdtBudget, BudgetFallbackDegradesToGlobalSegment) {
  KernelSim kern;
  kern.set_ldt_slot_budget(3);
  const Pid a = kern.create_process();
  SegmentManager sa(kern, a);
  sa.initialize(); // installs the call gate: slot 1 of 3
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(
        sa.allocate(0x1000U + static_cast<std::uint32_t>(i) * 0x1000U, 64)
            .global_fallback);
  }
  SegmentManager::Allocation over = sa.allocate(0x8000, 64);
  EXPECT_TRUE(over.global_fallback);
  EXPECT_EQ(over.selector.raw(), flat_user_data_selector().raw());
  EXPECT_EQ(sa.stats().budget_fallbacks, 1U);
  EXPECT_EQ(sa.stats().global_fallbacks, 1U);
  // The refused entry went back on the free list, and the kernel-side slot
  // count never crossed the cap.
  EXPECT_EQ(kern.ldt_slots_installed(), 3U);
}

} // namespace
} // namespace cash::kernel
