// Tests of the Section 3.4 multi-LDT extension: growing past the 8191-
// segment ceiling, LDTR switching, and the end-to-end protection-coverage
// difference against the paper's global-segment fallback.
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "runtime/segment_manager.hpp"
#include "workloads/workloads.hpp"

namespace cash::runtime {
namespace {

TEST(MultiLdt, SegmentManagerGrowsASecondLdt) {
  kernel::KernelSim kern;
  const kernel::Pid pid = kern.create_process();
  SegmentManager segments(kern, pid, /*max_ldts=*/2);
  (void)segments.initialize();
  for (int i = 0; i < 8191; ++i) {
    const auto alloc = segments.allocate(
        0x100000 + static_cast<std::uint32_t>(i) * 16, 16);
    ASSERT_EQ(alloc.ldt_id, 0U) << i;
  }
  const auto overflow = segments.allocate(0x9000000, 16);
  EXPECT_FALSE(overflow.global_fallback);
  EXPECT_EQ(overflow.ldt_id, 1U);
  EXPECT_EQ(segments.stats().extra_ldts_created, 1U);
  EXPECT_EQ(kern.ldt_count(pid), 2U);
  // The packed selector word carries the LDT id.
  EXPECT_EQ(overflow.selector_word() >> 16, 1U);
  EXPECT_EQ(overflow.selector_word() & 0xFFFFU, overflow.selector.raw());
}

TEST(MultiLdt, ExhaustionOfAllLdtsStillFallsBack) {
  kernel::KernelSim kern;
  const kernel::Pid pid = kern.create_process();
  SegmentManager segments(kern, pid, /*max_ldts=*/2);
  (void)segments.initialize();
  for (int i = 0; i < 2 * 8191; ++i) {
    const auto alloc = segments.allocate(
        0x100000 + static_cast<std::uint32_t>(i) * 16, 16);
    ASSERT_FALSE(alloc.global_fallback) << i;
  }
  EXPECT_TRUE(segments.allocate(0x9000000, 16).global_fallback);
}

TEST(MultiLdt, ReleaseReturnsEntryToTheRightLdt) {
  kernel::KernelSim kern;
  const kernel::Pid pid = kern.create_process();
  SegmentManager segments(kern, pid, /*max_ldts=*/2);
  (void)segments.initialize();
  for (int i = 0; i < 8191; ++i) {
    (void)segments.allocate(0x100000 + static_cast<std::uint32_t>(i) * 16,
                            16);
  }
  const auto in_second = segments.allocate(0x9000000, 16);
  ASSERT_EQ(in_second.ldt_id, 1U);
  (void)segments.release(in_second.ldt_index, 0x9000000, 16,
                         in_second.ldt_id);
  // Reallocating the same object hits the cache with the right LDT id.
  const auto again = segments.allocate(0x9000000, 16);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.ldt_id, 1U);
}

TEST(MultiLdt, KernelSwitchChargesAndRepoints) {
  kernel::KernelSim kern;
  const kernel::Pid pid = kern.create_process();
  const auto created = kern.create_extra_ldt(pid);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(kern.active_ldt(pid), 0U);
  ASSERT_TRUE(kern.switch_ldt(pid, created.value()).ok());
  EXPECT_EQ(kern.active_ldt(pid), 1U);
  EXPECT_EQ(kern.account(pid).ldt_switches, 1U);
  EXPECT_FALSE(kern.switch_ldt(pid, 7).ok());
}

// End-to-end coverage: a program that keeps > 8191 buffers live. The
// paper's prototype silently stops checking the overflowed late buffer;
// with two LDTs the overflow is caught.
constexpr const char* kManyBuffersOverflow = R"(
int main() {
  int *p;
  int i;
  p = malloc(8);
  for (i = 0; i < 8250; i++) {
    p = malloc(8);
  }
  for (i = 0; i < 6; i++) {
    p[i] = i;        // overflows the 2-word buffer at i == 2
  }
  return 0;
}
)";

vm::RunResult run_with_ldts(const char* source, int max_ldts) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  options.machine.max_ldts = max_ldts;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  return compiled.program->run();
}

TEST(MultiLdt, SingleLdtMissesOverflowPast8191Segments) {
  const vm::RunResult r = run_with_ldts(kManyBuffersOverflow, 1);
  // The late buffer fell back to the global segment: unchecked.
  EXPECT_TRUE(r.ok) << (r.fault ? r.fault->detail : r.error);
  EXPECT_GT(r.segment_stats.global_fallbacks, 0U);
}

TEST(MultiLdt, TwoLdtsCatchTheSameOverflow) {
  const vm::RunResult r = run_with_ldts(kManyBuffersOverflow, 2);
  EXPECT_FALSE(r.ok);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_TRUE(r.bound_violation());
  EXPECT_EQ(r.segment_stats.global_fallbacks, 0U);
  EXPECT_EQ(r.segment_stats.extra_ldts_created, 1U);
}

TEST(MultiLdt, InBoundsProgramRunsCleanlyWithTwoLdts) {
  // Same shape, but the final loop stays within the 2-word buffer; the run
  // must complete and must have exercised at least one LDTR switch.
  constexpr const char* kInBounds = R"(
int main() {
  int *p;
  int i;
  p = malloc(8);
  for (i = 0; i < 8250; i++) {
    p = malloc(8);
  }
  for (i = 0; i < 2; i++) {
    p[i] = i;
  }
  return 0;
}
)";
  const vm::RunResult r = run_with_ldts(kInBounds, 2);
  EXPECT_TRUE(r.ok) << (r.fault ? r.fault->detail : r.error);
  EXPECT_GT(r.kernel_account.ldt_switches, 0U);
}

} // namespace
} // namespace cash::runtime
