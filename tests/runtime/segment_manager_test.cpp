// SegmentManager tests: the user-space free list, the 3-entry recently-
// freed-segment cache (Section 3.6's third optimisation), LDT exhaustion
// and the global-segment fallback — plus the fault-injection paths
// (forced exhaustion, forced cache misses, gate-busy retry/backoff).
#include <gtest/gtest.h>

#include "common/costs.hpp"
#include "faultinject/faultinject.hpp"
#include "runtime/segment_manager.hpp"

namespace cash::runtime {
namespace {

class SegmentManagerTest : public testing::Test {
 protected:
  SegmentManagerTest() : pid_(kernel_.create_process()) {}

  kernel::KernelSim kernel_;
  kernel::Pid pid_;
};

TEST_F(SegmentManagerTest, InitializeChargesPerProgramSetup) {
  SegmentManager segments(kernel_, pid_);
  EXPECT_EQ(segments.initialize(), costs::kPerProgramSetup);
  EXPECT_EQ(segments.initialize(), 0U); // idempotent
}

TEST_F(SegmentManagerTest, FirstAllocationTakesTheCallGate) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  const auto alloc = segments.allocate(0x1000, 256);
  EXPECT_FALSE(alloc.cache_hit);
  EXPECT_FALSE(alloc.global_fallback);
  EXPECT_EQ(alloc.cycles, costs::kPerArraySetup);
  EXPECT_NE(alloc.ldt_index, 0); // entry 0 is the call gate
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, 1U);
  // The descriptor is really installed.
  auto installed = kernel_.ldt(pid_).lookup(alloc.selector);
  ASSERT_TRUE(installed.ok());
  EXPECT_EQ(installed.value().base(), 0x1000U);
  EXPECT_EQ(installed.value().span(), 256U);
}

TEST_F(SegmentManagerTest, ExactMatchHitsTheCache) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  const auto first = segments.allocate(0x1000, 256);
  (void)segments.release(first.ldt_index, 0x1000, 256);
  const auto second = segments.allocate(0x1000, 256);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.ldt_index, first.ldt_index);
  EXPECT_EQ(second.cycles, costs::kSegCacheHit);
  // No additional kernel entry for the hit.
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, 1U);
}

TEST_F(SegmentManagerTest, DifferentBaseOrLimitMisses) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  const auto first = segments.allocate(0x1000, 256);
  (void)segments.release(first.ldt_index, 0x1000, 256);
  const auto different_size = segments.allocate(0x1000, 512);
  EXPECT_FALSE(different_size.cache_hit);
  const auto different_base = segments.allocate(0x9000, 256);
  EXPECT_FALSE(different_base.cache_hit);
}

TEST_F(SegmentManagerTest, CacheHoldsThreeMostRecent) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  // Allocate and free four distinct segments a..d.
  std::uint16_t idx[4];
  for (int i = 0; i < 4; ++i) {
    const auto alloc =
        segments.allocate(0x1000 * (i + 1), 128);
    idx[i] = alloc.ldt_index;
  }
  for (int i = 0; i < 4; ++i) {
    (void)segments.release(idx[i], 0x1000 * (i + 1), 128);
  }
  // d, c, b are cached; a was evicted to the free list.
  EXPECT_TRUE(segments.allocate(0x4000, 128).cache_hit);  // d
  EXPECT_TRUE(segments.allocate(0x3000, 128).cache_hit);  // c
  EXPECT_TRUE(segments.allocate(0x2000, 128).cache_hit);  // b
  EXPECT_FALSE(segments.allocate(0x1000, 128).cache_hit); // a: miss
}

TEST_F(SegmentManagerTest, ToastPatternGetsSteadyStateHits) {
  // Three local arrays allocated/freed per call, same bases each time —
  // after the first call, every allocation hits (the Section 3.6 story).
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  for (int call = 0; call < 10; ++call) {
    const auto a = segments.allocate(0xA000, 36);
    const auto b = segments.allocate(0xB000, 36);
    const auto c = segments.allocate(0xC000, 640);
    (void)segments.release(a.ldt_index, 0xA000, 36);
    (void)segments.release(b.ldt_index, 0xB000, 36);
    (void)segments.release(c.ldt_index, 0xC000, 640);
  }
  EXPECT_EQ(segments.stats().alloc_requests, 30U);
  EXPECT_EQ(segments.stats().cache_hits, 27U); // all but the first three
}

TEST_F(SegmentManagerTest, ExhaustionFallsBackToGlobalSegment) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  // Consume all 8191 entries.
  for (int i = 0; i < 8191; ++i) {
    const auto alloc = segments.allocate(
        0x100000 + static_cast<std::uint32_t>(i) * 16, 16);
    ASSERT_FALSE(alloc.global_fallback) << i;
  }
  const auto overflow = segments.allocate(0x9000000, 16);
  EXPECT_TRUE(overflow.global_fallback);
  EXPECT_EQ(overflow.ldt_index, SegmentManager::kGlobalSegmentIndex);
  // The fallback selector is the flat user data segment: no protection.
  EXPECT_EQ(overflow.selector.raw(),
            kernel::flat_user_data_selector().raw());
  EXPECT_EQ(segments.stats().global_fallbacks, 1U);
  EXPECT_EQ(segments.stats().peak_segments, 8191U);
}

TEST_F(SegmentManagerTest, ReleasingGlobalFallbackIsCheap) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  EXPECT_EQ(segments.release(SegmentManager::kGlobalSegmentIndex, 0, 16), 1U);
}

TEST_F(SegmentManagerTest, FreeingNeverEntersTheKernel) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  const auto alloc = segments.allocate(0x1000, 64);
  const std::uint64_t gates_before = kernel_.account(pid_).call_gate_calls;
  (void)segments.release(alloc.ldt_index, 0x1000, 64);
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, gates_before);
}

TEST_F(SegmentManagerTest, CycleAccountingMatchesCostModel) {
  // Every allocate/release path charges exactly the constants from
  // common/costs.hpp — nothing hidden, nothing double-counted.
  SegmentManager segments(kernel_, pid_);
  EXPECT_EQ(segments.initialize(), costs::kPerProgramSetup);
  const auto kernel_alloc = segments.allocate(0x1000, 256);
  EXPECT_EQ(kernel_alloc.cycles, costs::kPerArraySetup);
  EXPECT_EQ(segments.release(kernel_alloc.ldt_index, 0x1000, 256),
            costs::kPerArrayTeardown);
  const auto cache_hit = segments.allocate(0x1000, 256);
  EXPECT_TRUE(cache_hit.cache_hit);
  EXPECT_EQ(cache_hit.cycles, costs::kSegCacheHit);
  // Global-fallback release charges the 1-cycle no-op path.
  EXPECT_EQ(segments.release(SegmentManager::kGlobalSegmentIndex, 0, 16),
            1U);
}

TEST_F(SegmentManagerTest, ExhaustionConsultsFreeListThenCacheThenFallsBack) {
  // Past 8191 live segments, new requests drain (1) the free list, then
  // (2) recycle the oldest recently-freed cached entry, and only then
  // (3) degrade to the global segment.
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  std::uint16_t idx[8191];
  for (int i = 0; i < 8191; ++i) {
    const auto alloc = segments.allocate(
        0x100000 + static_cast<std::uint32_t>(i) * 16, 16);
    ASSERT_FALSE(alloc.global_fallback) << i;
    idx[i] = alloc.ldt_index;
  }
  // Free four: r0 is evicted from the 3-entry cache onto the free list;
  // the cache holds [r3, r2, r1] (most recent first).
  for (int i = 0; i < 4; ++i) {
    (void)segments.release(idx[i],
                           0x100000 + static_cast<std::uint32_t>(i) * 16,
                           16);
  }
  // Four fresh (base, size) pairs: free-list entry first, then the cache
  // recycled oldest-first. None of these are cache *hits* (new bases).
  const auto a = segments.allocate(0xA000000, 32);
  EXPECT_FALSE(a.cache_hit);
  EXPECT_FALSE(a.global_fallback);
  EXPECT_EQ(a.ldt_index, idx[0]); // the evicted entry, via the free list
  const auto b = segments.allocate(0xB000000, 32);
  EXPECT_EQ(b.ldt_index, idx[1]); // oldest cached entry recycled
  const auto c = segments.allocate(0xC000000, 32);
  EXPECT_EQ(c.ldt_index, idx[2]);
  const auto d = segments.allocate(0xD000000, 32);
  EXPECT_EQ(d.ldt_index, idx[3]);
  // Both sources dry: the next request degrades.
  const std::uint64_t fallbacks_before = segments.stats().global_fallbacks;
  const auto overflow = segments.allocate(0xE000000, 32);
  EXPECT_TRUE(overflow.global_fallback);
  EXPECT_EQ(segments.stats().global_fallbacks, fallbacks_before + 1);
}

// --- Fault-injection paths -------------------------------------------------

TEST_F(SegmentManagerTest, InjectedExhaustionForcesGlobalFallback) {
  faultinject::FaultPlan plan;
  plan.rules.push_back({faultinject::FaultSite::kSegAllocate, 0, 1, 0, 1});
  faultinject::FaultInjector injector(plan, 1);
  SegmentManager segments(kernel_, pid_, 1, &injector);
  (void)segments.initialize();
  const auto alloc = segments.allocate(0x1000, 256);
  EXPECT_TRUE(alloc.global_fallback);
  EXPECT_EQ(alloc.ldt_index, SegmentManager::kGlobalSegmentIndex);
  EXPECT_EQ(alloc.selector.raw(), kernel::flat_user_data_selector().raw());
  EXPECT_EQ(alloc.cycles, 2U); // same cost as genuine exhaustion
  EXPECT_EQ(segments.stats().global_fallbacks, 1U);
  EXPECT_EQ(segments.stats().kernel_allocs, 0U);
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, 0U);
}

TEST_F(SegmentManagerTest, InjectedCacheBypassForcesKernelPath) {
  faultinject::FaultPlan plan;
  plan.rules.push_back({faultinject::FaultSite::kSegCacheProbe, 0, 1, 0, 1});
  faultinject::FaultInjector injector(plan, 1);
  SegmentManager segments(kernel_, pid_, 1, &injector);
  (void)segments.initialize();
  const auto first = segments.allocate(0x1000, 256);
  (void)segments.release(first.ldt_index, 0x1000, 256);
  // Identical (base, size): would hit the cache, but the probe is forced
  // to miss, so the allocation takes the call gate again.
  const auto second = segments.allocate(0x1000, 256);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(second.cycles, costs::kPerArraySetup);
  EXPECT_EQ(segments.stats().cache_hits, 0U);
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, 2U);
}

TEST_F(SegmentManagerTest, GateBusyBounceRetriesWithBackoff) {
  // Every other gate entry bounces: attempt 1 bounces, attempt 2 lands.
  faultinject::FaultPlan plan;
  plan.rules.push_back({faultinject::FaultSite::kCallGateBusy, 0, 2, 0, 1});
  faultinject::FaultInjector injector(plan, 1);
  kernel_.set_fault_injector(&injector);
  SegmentManager segments(kernel_, pid_, 1, &injector);
  (void)segments.initialize();
  const auto alloc = segments.allocate(0x1000, 256);
  EXPECT_FALSE(alloc.global_fallback);
  EXPECT_EQ(alloc.cycles,
            costs::kPerArraySetup + costs::kGateBusyBackoffBase);
  EXPECT_EQ(segments.stats().gate_busy_retries, 1U);
  // The bounced lcall charged no kernel cycles; the landed one did.
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, 1U);
  // The descriptor really landed.
  auto installed = kernel_.ldt(pid_).lookup(alloc.selector);
  ASSERT_TRUE(installed.ok());
  EXPECT_EQ(installed.value().base(), 0x1000U);
}

TEST_F(SegmentManagerTest, JammedGateDegradesToGlobalFallback) {
  // The gate never opens: after kGateBusyMaxRetries bounced retries the
  // allocation gives the LDT entry back and degrades, charging the full
  // exponential backoff.
  // Jam for exactly the first allocation's attempts (1 + max retries),
  // then clear.
  faultinject::FaultPlan plan;
  plan.rules.push_back(
      {faultinject::FaultSite::kCallGateBusy, 0, 1,
       static_cast<std::uint64_t>(1 + costs::kGateBusyMaxRetries), 1});
  faultinject::FaultInjector injector(plan, 1);
  kernel_.set_fault_injector(&injector);
  SegmentManager segments(kernel_, pid_, 1, &injector);
  (void)segments.initialize();
  const auto alloc = segments.allocate(0x1000, 256);
  EXPECT_TRUE(alloc.global_fallback);
  std::uint64_t backoff = 0;
  for (int attempt = 1; attempt <= costs::kGateBusyMaxRetries; ++attempt) {
    backoff += costs::kGateBusyBackoffBase << (attempt - 1);
  }
  EXPECT_EQ(alloc.cycles, 2 + backoff);
  EXPECT_EQ(segments.stats().gate_busy_retries,
            static_cast<std::uint64_t>(costs::kGateBusyMaxRetries));
  EXPECT_EQ(segments.stats().global_fallbacks, 1U);
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, 0U);
  // The LDT entry was handed back: with the jam cleared, the next request
  // takes the very same entry off the free list and installs normally.
  const auto retry = segments.allocate(0x2000, 64);
  EXPECT_FALSE(retry.global_fallback);
  EXPECT_EQ(retry.ldt_index, 1); // first free-list entry, reissued
  EXPECT_EQ(segments.stats().kernel_allocs, 1U);
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, 1U);
}

} // namespace
} // namespace cash::runtime
