// SegmentManager tests: the user-space free list, the 3-entry recently-
// freed-segment cache (Section 3.6's third optimisation), LDT exhaustion
// and the global-segment fallback.
#include <gtest/gtest.h>

#include "common/costs.hpp"
#include "runtime/segment_manager.hpp"

namespace cash::runtime {
namespace {

class SegmentManagerTest : public testing::Test {
 protected:
  SegmentManagerTest() : pid_(kernel_.create_process()) {}

  kernel::KernelSim kernel_;
  kernel::Pid pid_;
};

TEST_F(SegmentManagerTest, InitializeChargesPerProgramSetup) {
  SegmentManager segments(kernel_, pid_);
  EXPECT_EQ(segments.initialize(), costs::kPerProgramSetup);
  EXPECT_EQ(segments.initialize(), 0U); // idempotent
}

TEST_F(SegmentManagerTest, FirstAllocationTakesTheCallGate) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  const auto alloc = segments.allocate(0x1000, 256);
  EXPECT_FALSE(alloc.cache_hit);
  EXPECT_FALSE(alloc.global_fallback);
  EXPECT_EQ(alloc.cycles, costs::kPerArraySetup);
  EXPECT_NE(alloc.ldt_index, 0); // entry 0 is the call gate
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, 1U);
  // The descriptor is really installed.
  auto installed = kernel_.ldt(pid_).lookup(alloc.selector);
  ASSERT_TRUE(installed.ok());
  EXPECT_EQ(installed.value().base(), 0x1000U);
  EXPECT_EQ(installed.value().span(), 256U);
}

TEST_F(SegmentManagerTest, ExactMatchHitsTheCache) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  const auto first = segments.allocate(0x1000, 256);
  (void)segments.release(first.ldt_index, 0x1000, 256);
  const auto second = segments.allocate(0x1000, 256);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.ldt_index, first.ldt_index);
  EXPECT_EQ(second.cycles, costs::kSegCacheHit);
  // No additional kernel entry for the hit.
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, 1U);
}

TEST_F(SegmentManagerTest, DifferentBaseOrLimitMisses) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  const auto first = segments.allocate(0x1000, 256);
  (void)segments.release(first.ldt_index, 0x1000, 256);
  const auto different_size = segments.allocate(0x1000, 512);
  EXPECT_FALSE(different_size.cache_hit);
  const auto different_base = segments.allocate(0x9000, 256);
  EXPECT_FALSE(different_base.cache_hit);
}

TEST_F(SegmentManagerTest, CacheHoldsThreeMostRecent) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  // Allocate and free four distinct segments a..d.
  std::uint16_t idx[4];
  for (int i = 0; i < 4; ++i) {
    const auto alloc =
        segments.allocate(0x1000 * (i + 1), 128);
    idx[i] = alloc.ldt_index;
  }
  for (int i = 0; i < 4; ++i) {
    (void)segments.release(idx[i], 0x1000 * (i + 1), 128);
  }
  // d, c, b are cached; a was evicted to the free list.
  EXPECT_TRUE(segments.allocate(0x4000, 128).cache_hit);  // d
  EXPECT_TRUE(segments.allocate(0x3000, 128).cache_hit);  // c
  EXPECT_TRUE(segments.allocate(0x2000, 128).cache_hit);  // b
  EXPECT_FALSE(segments.allocate(0x1000, 128).cache_hit); // a: miss
}

TEST_F(SegmentManagerTest, ToastPatternGetsSteadyStateHits) {
  // Three local arrays allocated/freed per call, same bases each time —
  // after the first call, every allocation hits (the Section 3.6 story).
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  for (int call = 0; call < 10; ++call) {
    const auto a = segments.allocate(0xA000, 36);
    const auto b = segments.allocate(0xB000, 36);
    const auto c = segments.allocate(0xC000, 640);
    (void)segments.release(a.ldt_index, 0xA000, 36);
    (void)segments.release(b.ldt_index, 0xB000, 36);
    (void)segments.release(c.ldt_index, 0xC000, 640);
  }
  EXPECT_EQ(segments.stats().alloc_requests, 30U);
  EXPECT_EQ(segments.stats().cache_hits, 27U); // all but the first three
}

TEST_F(SegmentManagerTest, ExhaustionFallsBackToGlobalSegment) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  // Consume all 8191 entries.
  for (int i = 0; i < 8191; ++i) {
    const auto alloc = segments.allocate(
        0x100000 + static_cast<std::uint32_t>(i) * 16, 16);
    ASSERT_FALSE(alloc.global_fallback) << i;
  }
  const auto overflow = segments.allocate(0x9000000, 16);
  EXPECT_TRUE(overflow.global_fallback);
  EXPECT_EQ(overflow.ldt_index, SegmentManager::kGlobalSegmentIndex);
  // The fallback selector is the flat user data segment: no protection.
  EXPECT_EQ(overflow.selector.raw(),
            kernel::flat_user_data_selector().raw());
  EXPECT_EQ(segments.stats().global_fallbacks, 1U);
  EXPECT_EQ(segments.stats().peak_segments, 8191U);
}

TEST_F(SegmentManagerTest, ReleasingGlobalFallbackIsCheap) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  EXPECT_EQ(segments.release(SegmentManager::kGlobalSegmentIndex, 0, 16), 1U);
}

TEST_F(SegmentManagerTest, FreeingNeverEntersTheKernel) {
  SegmentManager segments(kernel_, pid_);
  (void)segments.initialize();
  const auto alloc = segments.allocate(0x1000, 64);
  const std::uint64_t gates_before = kernel_.account(pid_).call_gate_calls;
  (void)segments.release(alloc.ldt_index, 0x1000, 64);
  EXPECT_EQ(kernel_.account(pid_).call_gate_calls, gates_before);
}

} // namespace
} // namespace cash::runtime
