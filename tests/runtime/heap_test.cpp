// Heap tests: info-structure layout (the paper's "112 bytes for a 100-byte
// array"), per-mode behaviour of cash_malloc/cash_free, the N>1 rule, and
// Electric-Fence guard-page placement.
#include <gtest/gtest.h>

#include "kernel/kernel_sim.hpp"
#include "mmu/mmu.hpp"
#include "runtime/heap.hpp"

namespace cash::runtime {
namespace {

class HeapTest : public testing::TestWithParam<passes::CheckMode> {
 protected:
  HeapTest()
      : pid_(kernel_.create_process()),
        phys_(4096),
        pages_(phys_),
        unit_(kernel_.gdt(), kernel_.ldt(pid_)),
        mmu_(unit_, pages_, phys_),
        segments_(kernel_, pid_),
        arrays_(mmu_, segments_, GetParam()),
        heap_(mmu_, arrays_, 0x10000000, 0x20000000) {
    if (GetParam() == passes::CheckMode::kCash) {
      (void)segments_.initialize();
    }
  }

  kernel::KernelSim kernel_;
  kernel::Pid pid_;
  paging::PhysicalMemory phys_;
  paging::PageTable pages_;
  x86seg::SegmentationUnit unit_;
  mmu::Mmu mmu_;
  SegmentManager segments_;
  ArrayRuntime arrays_;
  CashHeap heap_;
};

TEST_P(HeapTest, AllocationReturnsWordAlignedData) {
  const auto obj = heap_.allocate(100);
  ASSERT_NE(obj.data, 0U);
  EXPECT_EQ(obj.data % 4, 0U);
  EXPECT_EQ(heap_.stats().malloc_calls, 1U);
}

TEST_P(HeapTest, ObjectsDontOverlap) {
  const auto a = heap_.allocate(64);
  const auto b = heap_.allocate(64);
  EXPECT_GE(b.data, a.data + 64);
}

INSTANTIATE_TEST_SUITE_P(AllModes, HeapTest,
                         testing::Values(passes::CheckMode::kNoCheck,
                                         passes::CheckMode::kBcc,
                                         passes::CheckMode::kCash,
                                         passes::CheckMode::kEfence),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

class CashHeapTest : public testing::Test {
 protected:
  CashHeapTest()
      : pid_(kernel_.create_process()),
        phys_(4096),
        pages_(phys_),
        unit_(kernel_.gdt(), kernel_.ldt(pid_)),
        mmu_(unit_, pages_, phys_),
        segments_(kernel_, pid_),
        arrays_(mmu_, segments_, passes::CheckMode::kCash),
        heap_(mmu_, arrays_, 0x10000000, 0x20000000) {
    (void)segments_.initialize();
  }

  kernel::KernelSim kernel_;
  kernel::Pid pid_;
  paging::PhysicalMemory phys_;
  paging::PageTable pages_;
  x86seg::SegmentationUnit unit_;
  mmu::Mmu mmu_;
  SegmentManager segments_;
  ArrayRuntime arrays_;
  CashHeap heap_;
};

TEST_F(CashHeapTest, InfoStructurePrecedesDataAndIsFilled) {
  const auto obj = heap_.allocate(100);
  ASSERT_NE(obj.info, 0U);
  EXPECT_EQ(obj.data - obj.info, kInfoBytes); // 3 words, paper Section 3.2
  EXPECT_EQ(mmu_.read32_linear(obj.info + kInfoLowerOff).value(), obj.data);
  EXPECT_EQ(mmu_.read32_linear(obj.info + kInfoUpperOff).value(),
            obj.data + 100);
  const std::uint32_t selector_raw =
      mmu_.read32_linear(obj.info + kInfoSelectorOff).value();
  ASSERT_NE(selector_raw, 0U);
  // The installed segment covers exactly the object.
  const x86seg::Selector sel(static_cast<std::uint16_t>(selector_raw));
  auto descriptor = kernel_.ldt(pid_).lookup(sel);
  ASSERT_TRUE(descriptor.ok());
  EXPECT_EQ(descriptor.value().base(), obj.data);
  EXPECT_EQ(descriptor.value().span(), 100U);
}

TEST_F(CashHeapTest, SingleWordMallocGetsNoSegment) {
  // malloc(4) is not array-like (N == 1): no info structure, no segment —
  // the Section 1 rule.
  const auto obj = heap_.allocate(4);
  EXPECT_EQ(obj.info, 0U);
  EXPECT_EQ(segments_.stats().alloc_requests, 0U);
}

TEST_F(CashHeapTest, FreeReturnsSegmentToCache) {
  const auto obj = heap_.allocate(256);
  EXPECT_EQ(segments_.stats().segments_in_use, 1U);
  (void)heap_.release(obj.data);
  EXPECT_EQ(segments_.stats().segments_in_use, 0U);
  EXPECT_EQ(heap_.stats().free_calls, 1U);
  // Same-size reallocation reuses the cached segment.
  const auto again = heap_.allocate(256);
  EXPECT_EQ(segments_.stats().cache_hits, 1U);
  (void)again;
}

TEST_F(CashHeapTest, HeapExhaustionReturnsNull) {
  CashHeap tiny(mmu_, arrays_, 0x30000000, 0x30000100);
  const auto obj = tiny.allocate(1024);
  EXPECT_EQ(obj.data, 0U);
}

class EfenceHeapTest : public testing::Test {
 protected:
  EfenceHeapTest()
      : pid_(kernel_.create_process()),
        phys_(4096),
        pages_(phys_),
        unit_(kernel_.gdt(), kernel_.ldt(pid_)),
        mmu_(unit_, pages_, phys_),
        segments_(kernel_, pid_),
        arrays_(mmu_, segments_, passes::CheckMode::kEfence),
        heap_(mmu_, arrays_, 0x10000000, 0x20000000) {}

  kernel::KernelSim kernel_;
  kernel::Pid pid_;
  paging::PhysicalMemory phys_;
  paging::PageTable pages_;
  x86seg::SegmentationUnit unit_;
  mmu::Mmu mmu_;
  SegmentManager segments_;
  ArrayRuntime arrays_;
  CashHeap heap_;
};

TEST_F(EfenceHeapTest, ObjectEndsAtPageBoundaryWithGuardAfter) {
  const auto obj = heap_.allocate(100);
  ASSERT_NE(obj.data, 0U);
  // In-bounds access works.
  EXPECT_TRUE(mmu_.write32_linear(obj.data, 1).ok());
  EXPECT_TRUE(mmu_.write32_linear(obj.data + 96, 1).ok());
  // One word past the end lands on the guard page.
  const Status past = mmu_.write32_linear(obj.data + 100, 1);
  ASSERT_FALSE(past.ok());
  EXPECT_EQ(past.fault().kind, FaultKind::kPageFault);
  EXPECT_EQ(heap_.stats().guard_pages, 1U);
}

TEST_F(EfenceHeapTest, ConsecutiveAllocationsDontShareGuards) {
  const auto a = heap_.allocate(64);
  const auto b = heap_.allocate(64);
  EXPECT_TRUE(mmu_.write32_linear(a.data + 60, 1).ok());
  EXPECT_TRUE(mmu_.write32_linear(b.data + 60, 1).ok());
  EXPECT_FALSE(mmu_.write32_linear(a.data + 64, 1).ok());
  EXPECT_FALSE(mmu_.write32_linear(b.data + 64, 1).ok());
  EXPECT_EQ(heap_.stats().guard_pages, 2U);
}

} // namespace
} // namespace cash::runtime
