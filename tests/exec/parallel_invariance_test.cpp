// Thread-count invariance: the DESIGN.md §7 contract that host-side
// parallelism never changes simulated results. serve_requests, a
// bench-style (workload x mode) grid, and the fuzz differential matrix
// must produce bit-identical results for jobs in {1, 2, 8}.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/executor.hpp"
#include "netsim/netsim.hpp"
#include "workloads/fuzz.hpp"
#include "workloads/workloads.hpp"

namespace cash {
namespace {

using passes::CheckMode;

constexpr const char* kServer = R"(
int table[64];
int server_init() {
  int i;
  for (i = 0; i < 64; i++) {
    table[i] = i * 3;
  }
  return 0;
}
int sum_chunk(int reps) {
  int buf[64];
  int i; int r; int s;
  s = 0;
  for (r = 0; r < reps; r++) {
    for (i = 0; i < 64; i++) {
      buf[i] = table[i] + r;
      s = s + buf[i];
    }
  }
  return s;
}
int handle_request() {
  int n;
  n = rand() % 12 + 4;
  return sum_chunk(n) + sum_chunk(n);
}
int main() {
  server_init();
  return handle_request();
}
)";

void expect_identical(const netsim::ServerMetrics& a,
                      const netsim::ServerMetrics& b, int jobs) {
  EXPECT_EQ(a.requests, b.requests) << "jobs=" << jobs;
  EXPECT_EQ(a.total_cpu_cycles, b.total_cpu_cycles) << "jobs=" << jobs;
  EXPECT_EQ(a.total_busy_cycles, b.total_busy_cycles) << "jobs=" << jobs;
  // Derived doubles come from identical integer inputs through identical
  // expressions, so they too must be bit-identical (EXPECT_EQ, not NEAR).
  EXPECT_EQ(a.mean_latency_cycles, b.mean_latency_cycles) << "jobs=" << jobs;
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us) << "jobs=" << jobs;
  EXPECT_EQ(a.throughput_rps, b.throughput_rps) << "jobs=" << jobs;
  EXPECT_EQ(a.sw_checks, b.sw_checks) << "jobs=" << jobs;
  EXPECT_EQ(a.hw_checks, b.hw_checks) << "jobs=" << jobs;
  EXPECT_EQ(a.segment_allocs, b.segment_allocs) << "jobs=" << jobs;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << "jobs=" << jobs;
}

TEST(ParallelInvariance, ServeRequestsIsThreadCountInvariant) {
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kCash}) {
    CompileOptions options;
    options.lower.mode = mode;
    CompileResult program = compile(kServer, options);
    ASSERT_TRUE(program.ok()) << program.error;
    const netsim::ServerMetrics serial =
        netsim::serve_requests(*program.program, 40, 7, {1});
    for (int jobs : {2, 8}) {
      const netsim::ServerMetrics parallel =
          netsim::serve_requests(*program.program, 40, 7, {jobs});
      expect_identical(serial, parallel, jobs);
    }
  }
}

TEST(ParallelInvariance, BenchGridIsThreadCountInvariant) {
  // A small (workload x mode) grid like the bench tables run: each cell
  // compiles and executes independently; its simulated cycle count and
  // counters must not depend on the thread count.
  const std::vector<std::string> sources = {
      workloads::matmul_source(24), workloads::gauss_source(24),
      workloads::fft2d_source(16)};
  const CheckMode kModes[] = {CheckMode::kNoCheck, CheckMode::kCash,
                              CheckMode::kBcc};
  struct CellResult {
    std::uint64_t cycles;
    std::uint64_t sw_checks;
    std::uint64_t hw_checks;
    bool operator==(const CellResult&) const = default;
  };
  auto cell = [&](std::size_t i) -> CellResult {
    CompileOptions options;
    options.lower.mode = kModes[i % 3];
    CompileResult compiled = compile(sources[i / 3], options);
    if (!compiled.ok()) {
      throw std::runtime_error(compiled.error);
    }
    const vm::RunResult run = compiled.program->run();
    return {run.cycles, run.counters.sw_checks,
            run.counters.hw_checked_accesses};
  };
  const std::size_t n = sources.size() * 3;
  const std::vector<CellResult> serial = exec::parallel_map(n, 1, cell);
  for (int jobs : {2, 8}) {
    EXPECT_EQ(exec::parallel_map(n, jobs, cell), serial) << "jobs=" << jobs;
  }
}

TEST(ParallelInvariance, FuzzMatrixIsThreadCountInvariant) {
  const std::vector<workloads::FuzzDivergence> serial =
      workloads::run_fuzz_matrix(1, 5, {1});
  EXPECT_TRUE(serial.empty());
  for (int jobs : {2, 8}) {
    const std::vector<workloads::FuzzDivergence> parallel =
        workloads::run_fuzz_matrix(1, 5, {jobs});
    ASSERT_EQ(parallel.size(), serial.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].seed, serial[i].seed);
      EXPECT_EQ(parallel[i].config, serial[i].config);
      EXPECT_EQ(parallel[i].detail, serial[i].detail);
    }
  }
}

} // namespace
} // namespace cash
