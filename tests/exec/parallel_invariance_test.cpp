// Thread-count invariance: the DESIGN.md §7 contract that host-side
// parallelism never changes simulated results. serve_requests, a
// bench-style (workload x mode) grid, and the fuzz differential matrix
// must produce bit-identical results for jobs in {1, 2, 8}.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/executor.hpp"
#include "faultinject/faultinject.hpp"
#include "netsim/netsim.hpp"
#include "workloads/chaos.hpp"
#include "workloads/fuzz.hpp"
#include "workloads/tenants.hpp"
#include "workloads/workloads.hpp"

namespace cash {
namespace {

using passes::CheckMode;

constexpr const char* kServer = R"(
int table[64];
int server_init() {
  int i;
  for (i = 0; i < 64; i++) {
    table[i] = i * 3;
  }
  return 0;
}
int sum_chunk(int reps) {
  int buf[64];
  int i; int r; int s;
  s = 0;
  for (r = 0; r < reps; r++) {
    for (i = 0; i < 64; i++) {
      buf[i] = table[i] + r;
      s = s + buf[i];
    }
  }
  return s;
}
int handle_request() {
  int n;
  n = rand() % 12 + 4;
  return sum_chunk(n) + sum_chunk(n);
}
int main() {
  server_init();
  return handle_request();
}
)";

void expect_identical(const netsim::ServerMetrics& a,
                      const netsim::ServerMetrics& b, int jobs) {
  // first_metrics_difference covers every simulated field — the integer
  // aggregates, the derived doubles (identical integer inputs through
  // identical expressions must be bit-identical: equality, not NEAR), the
  // latency order statistics, the queueing aggregates, and the per-class
  // breakdowns. Only host-side PoolStats is exempt.
  EXPECT_EQ(netsim::first_metrics_difference(a, b), "") << "jobs=" << jobs;
}

TEST(ParallelInvariance, ServeRequestsIsThreadCountInvariant) {
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kCash}) {
    CompileOptions options;
    options.lower.mode = mode;
    CompileResult program = compile(kServer, options);
    ASSERT_TRUE(program.ok()) << program.error;
    const netsim::ServerMetrics serial =
        netsim::serve_requests(*program.program, 40, 7, {1});
    for (int jobs : {2, 8}) {
      const netsim::ServerMetrics parallel =
          netsim::serve_requests(*program.program, 40, 7, {jobs});
      expect_identical(serial, parallel, jobs);
    }
  }
}

TEST(ParallelInvariance, SnapshotServingMatchesReplayAtEveryThreadCount) {
  // The fork-from-snapshot path (per-worker machine + capture/restore) and
  // the rebuild-and-replay path materialise the same parent image; every
  // ServerMetrics field must be bit-identical across both strategies, both
  // engines, and jobs in {1, 2, 8}.
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kCash}) {
    CompileOptions options;
    options.lower.mode = mode;
    CompileResult program = compile(kServer, options);
    ASSERT_TRUE(program.ok()) << program.error;

    netsim::ServeOptions replay;
    replay.enable_snapshot = false;
    replay.enable_predecode = false;
    const netsim::ServerMetrics reference =
        netsim::serve_requests(*program.program, 40, 7, {1}, {}, replay);

    netsim::ServeOptions snapshot; // both fast paths on (the default)
    for (int jobs : {1, 2, 8}) {
      const netsim::ServerMetrics fast = netsim::serve_requests(
          *program.program, 40, 7, {jobs}, {}, snapshot);
      expect_identical(reference, fast, jobs);
    }
  }
}

TEST(ParallelInvariance, BenchGridIsThreadCountInvariant) {
  // A small (workload x mode) grid like the bench tables run: each cell
  // compiles and executes independently; its simulated cycle count and
  // counters must not depend on the thread count.
  const std::vector<std::string> sources = {
      workloads::matmul_source(24), workloads::gauss_source(24),
      workloads::fft2d_source(16)};
  const CheckMode kModes[] = {CheckMode::kNoCheck, CheckMode::kCash,
                              CheckMode::kBcc};
  struct CellResult {
    std::uint64_t cycles;
    std::uint64_t sw_checks;
    std::uint64_t hw_checks;
    bool operator==(const CellResult&) const = default;
  };
  auto cell = [&](std::size_t i) -> CellResult {
    CompileOptions options;
    options.lower.mode = kModes[i % 3];
    CompileResult compiled = compile(sources[i / 3], options);
    if (!compiled.ok()) {
      throw std::runtime_error(compiled.error);
    }
    const vm::RunResult run = compiled.program->run();
    return {run.cycles, run.counters.sw_checks,
            run.counters.hw_checked_accesses};
  };
  const std::size_t n = sources.size() * 3;
  const std::vector<CellResult> serial = exec::parallel_map(n, 1, cell);
  for (int jobs : {2, 8}) {
    EXPECT_EQ(exec::parallel_map(n, jobs, cell), serial) << "jobs=" << jobs;
  }
}

void expect_identical(const workloads::ChaosCell& a,
                      const workloads::ChaosCell& b, int jobs) {
  EXPECT_EQ(a.seed, b.seed) << "jobs=" << jobs;
  EXPECT_EQ(a.plan, b.plan) << "jobs=" << jobs;
  EXPECT_EQ(a.completed, b.completed) << "jobs=" << jobs;
  EXPECT_EQ(a.output_matches, b.output_matches) << "jobs=" << jobs;
  EXPECT_EQ(a.degraded, b.degraded) << "jobs=" << jobs;
  EXPECT_EQ(a.faulted, b.faulted) << "jobs=" << jobs;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << "jobs=" << jobs;
  EXPECT_EQ(a.cycles, b.cycles) << "jobs=" << jobs;
  EXPECT_EQ(a.detail, b.detail) << "jobs=" << jobs;
}

TEST(ParallelInvariance, ChaosMatrixIsThreadCountInvariant) {
  // Fault injection composes with the parallel engine: every injected
  // (seed x plan) cell — degraded runs, structured faults, cycle counts,
  // fault-site hit totals — is a pure function of its inputs, so the whole
  // report is bit-identical for jobs in {1, 2, 8}.
  const workloads::ChaosReport serial = workloads::run_chaos_matrix(1, 4, {1});
  EXPECT_EQ(serial.violations, 0u);
  EXPECT_GT(serial.faults_injected, 0u);
  for (int jobs : {2, 8}) {
    const workloads::ChaosReport parallel =
        workloads::run_chaos_matrix(1, 4, {jobs});
    EXPECT_EQ(parallel.completed, serial.completed) << "jobs=" << jobs;
    EXPECT_EQ(parallel.degraded, serial.degraded) << "jobs=" << jobs;
    EXPECT_EQ(parallel.faulted, serial.faulted) << "jobs=" << jobs;
    EXPECT_EQ(parallel.faults_injected, serial.faults_injected)
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.violations, serial.violations) << "jobs=" << jobs;
    ASSERT_EQ(parallel.cells.size(), serial.cells.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      expect_identical(serial.cells[i], parallel.cells[i], jobs);
    }
  }
}

TEST(ParallelInvariance, InjectedServeRequestsIsThreadCountInvariant) {
  // The armed netsim path forks per-request machines, injects timeouts and
  // LDT exhaustion, and retries within a budget — all of which must stay a
  // pure function of (program, seed, plan), independent of worker threads.
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  CompileResult program = compile(kServer, options);
  ASSERT_TRUE(program.ok()) << program.error;

  faultinject::FaultPlan plan;
  plan.seed = 7;
  plan.net_retry_budget = 2;
  plan.rules.push_back({faultinject::FaultSite::kNetRequestTimeout, 0, 3, 0, 1});
  plan.rules.push_back({faultinject::FaultSite::kSegAllocate, 0, 5, 0, 1});

  const netsim::ServerMetrics serial =
      netsim::serve_requests(*program.program, 30, 11, {1}, plan);
  // The plan must actually exercise the degraded machinery, otherwise this
  // test silently decays into the clean-path one above.
  EXPECT_GT(serial.timeouts, 0u);
  EXPECT_GT(serial.retries, 0u);
  EXPECT_GT(serial.degraded_requests, 0u);
  EXPECT_GT(serial.faults_injected, 0u);
  for (int jobs : {2, 8}) {
    const netsim::ServerMetrics parallel =
        netsim::serve_requests(*program.program, 30, 11, {jobs}, plan);
    expect_identical(serial, parallel, jobs);
  }
}

TEST(ParallelInvariance, ArmedSnapshotServingMatchesRebuildAndReplay) {
  // The headline perf path: armed plans fork from a snapshot captured
  // *before* arming, then re-arm a fresh per-request injector after each
  // restore. That must be bit-identical — every fault pattern, retry,
  // failure string, percentile, and per-class count — to rebuilding the
  // machine and arming at the same fork point, across modes, plans, and
  // jobs in {1, 2, 8}.
  faultinject::FaultPlan timeouts;
  timeouts.seed = 7;
  timeouts.net_retry_budget = 2;
  timeouts.rules.push_back(
      {faultinject::FaultSite::kNetRequestTimeout, 0, 3, 0, 1});
  timeouts.rules.push_back({faultinject::FaultSite::kSegAllocate, 0, 5, 0, 1});
  faultinject::FaultPlan harsh; // exhausted budgets → failed requests
  harsh.seed = 3;
  harsh.net_retry_budget = 0;
  harsh.rules.push_back({faultinject::FaultSite::kSegAllocate, 0, 2, 0, 1});
  harsh.rules.push_back(
      {faultinject::FaultSite::kNetRequestTimeout, 0, 1, 0, 2});

  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kCash}) {
    CompileOptions options;
    options.lower.mode = mode;
    CompileResult program = compile(kServer, options);
    ASSERT_TRUE(program.ok()) << program.error;
    for (const faultinject::FaultPlan& plan : {timeouts, harsh}) {
      netsim::ServeOptions replay;
      replay.enable_snapshot = false;
      const netsim::ServerMetrics reference =
          netsim::serve_requests(*program.program, 30, 11, {1}, plan, replay);
      EXPECT_GT(reference.faults_injected, 0u);
      for (int jobs : {1, 2, 8}) {
        const netsim::ServerMetrics fast = netsim::serve_requests(
            *program.program, 30, 11, {jobs}, plan, {});
        expect_identical(reference, fast, jobs);
        // Prove the fast path actually ran: armed serving must capture the
        // pre-armed parent image and restore it per fork.
        EXPECT_GT(fast.pool.captures, 0u) << "jobs=" << jobs;
        EXPECT_GT(fast.pool.restores, 0u) << "jobs=" << jobs;
        EXPECT_EQ(reference.pool.captures, 0u);
        EXPECT_GE(reference.pool.machines_built, 30u);
      }
    }
  }
}

void expect_identical(const workloads::TenantCell& a,
                      const workloads::TenantCell& b, int jobs) {
  EXPECT_EQ(a.processes, b.processes) << "jobs=" << jobs;
  EXPECT_EQ(a.arrays_per_process, b.arrays_per_process) << "jobs=" << jobs;
  EXPECT_EQ(a.quantum_cycles, b.quantum_cycles) << "jobs=" << jobs;
  EXPECT_EQ(a.tenants, b.tenants) << "jobs=" << jobs;
  EXPECT_EQ(a.sched, b.sched) << "jobs=" << jobs;
  EXPECT_EQ(a.total_user_cycles, b.total_user_cycles) << "jobs=" << jobs;
  EXPECT_EQ(a.ldt_slots_installed, b.ldt_slots_installed) << "jobs=" << jobs;
  // Derived doubles: identical integer inputs through identical
  // expressions, so exact equality applies.
  EXPECT_EQ(a.thrash_ratio, b.thrash_ratio) << "jobs=" << jobs;
  EXPECT_EQ(a.switch_overhead, b.switch_overhead) << "jobs=" << jobs;
}

TEST(TenantMatrixBitIdentical, MatrixIsThreadCountInvariant) {
  // The multi-process tenant sweep shards (processes x arrays x quantum)
  // cells across host threads; every per-tenant record, scheduler
  // aggregate, and derived ratio must be a pure function of the cell's
  // options — including with a binding shared LDT budget.
  workloads::TenantOptions base;
  base.rounds = 2;
  base.seed = 23;
  base.ldt_slot_budget = 48;
  const std::vector<int> procs = {1, 3};
  const std::vector<int> arrays = {16, 40};
  const std::vector<std::uint64_t> quanta = {700, 9000};
  const std::vector<workloads::TenantCell> serial =
      workloads::run_tenant_matrix(procs, arrays, quanta, base, {1});
  ASSERT_EQ(serial.size(), procs.size() * arrays.size() * quanta.size());
  for (int jobs : {2, 8}) {
    const std::vector<workloads::TenantCell> parallel =
        workloads::run_tenant_matrix(procs, arrays, quanta, base, {jobs});
    ASSERT_EQ(parallel.size(), serial.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_identical(serial[i], parallel[i], jobs);
    }
  }
}

TEST(TenantMatrixBitIdentical, UnbudgetedRecordsAreQuantumInvariant) {
  // With no shared budget, a tenant's record may not depend on how finely
  // the scheduler slices the CPU: the same total work across wildly
  // different quanta yields bit-identical per-tenant records (only the
  // scheduler aggregates — switch counts — move).
  workloads::TenantOptions base;
  base.processes = 3;
  base.arrays_per_process = 24;
  base.rounds = 2;
  base.seed = 5;
  const std::vector<workloads::TenantCell> cells =
      workloads::run_tenant_matrix({3}, {24}, {500, 2000, 50000}, base, {2});
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_GT(cells[0].sched.context_switches, cells[2].sched.context_switches);
  for (std::size_t q = 1; q < cells.size(); ++q) {
    EXPECT_EQ(cells[0].tenants, cells[q].tenants)
        << "quantum " << cells[q].quantum_cycles;
  }
}

TEST(TenantMatrixBitIdentical, TenantServingIsThreadCountInvariant) {
  // Multi-tenant serving (class = tenant process, context switches charged
  // deterministically in the serial reduction) under the queue model.
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kCash}) {
    CompileOptions options;
    options.lower.mode = mode;
    CompileResult program = compile(kServer, options);
    ASSERT_TRUE(program.ok()) << program.error;
    netsim::ServeOptions serve;
    // Two tenants sharing one handler: tenancy is per class, so switches
    // still occur whenever the serving interleaves the two.
    serve.classes = {{"a", "handle_request", 2}, {"b", "handle_request", 1}};
    serve.sim_servers = 2;
    serve.mean_interarrival_cycles = 1500;
    serve.tenant_processes = true;
    const netsim::ServerMetrics serial =
        netsim::serve_requests(*program.program, 40, 7, {1}, {}, serve);
    EXPECT_GT(serial.context_switches, 0u);
    for (int jobs : {2, 8}) {
      const netsim::ServerMetrics parallel =
          netsim::serve_requests(*program.program, 40, 7, {jobs}, {}, serve);
      expect_identical(serial, parallel, jobs);
    }
  }
}

TEST(ParallelInvariance, FuzzMatrixIsThreadCountInvariant) {
  const std::vector<workloads::FuzzDivergence> serial =
      workloads::run_fuzz_matrix(1, 5, {1});
  EXPECT_TRUE(serial.empty());
  for (int jobs : {2, 8}) {
    const std::vector<workloads::FuzzDivergence> parallel =
        workloads::run_fuzz_matrix(1, 5, {jobs});
    ASSERT_EQ(parallel.size(), serial.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].seed, serial[i].seed);
      EXPECT_EQ(parallel[i].config, serial[i].config);
      EXPECT_EQ(parallel[i].detail, serial[i].detail);
    }
  }
}

} // namespace
} // namespace cash
