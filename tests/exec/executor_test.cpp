// Unit tests for the deterministic parallel executor: sharding coverage,
// the serial jobs=1 path, exception propagation, and $CASH_JOBS/config
// resolution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/executor.hpp"

namespace cash::exec {
namespace {

TEST(Executor, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Executor, EveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, 4, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Executor, MoreJobsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, 16, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(Executor, JobsOneRunsInlineOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  parallel_for(16, 1, [&](std::size_t) {
    all_inline = all_inline && std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(all_inline);
}

TEST(Executor, RethrowsTheLowestIndexException) {
  // Indices 3 and 7 throw; the serial loop would surface index 3 first,
  // and the parallel run must surface the same one for any jobs value.
  for (int jobs : {1, 2, 4, 8}) {
    try {
      parallel_for(10, jobs, [](std::size_t i) {
        if (i == 3 || i == 7) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 3") << "jobs=" << jobs;
    }
  }
}

TEST(Executor, ParallelMapMatchesSerialMap) {
  auto square = [](std::size_t i) { return i * i; };
  const std::vector<std::size_t> serial = parallel_map(257, 1, square);
  for (int jobs : {2, 3, 8}) {
    EXPECT_EQ(parallel_map(257, jobs, square), serial) << "jobs=" << jobs;
  }
}

TEST(Executor, ResolveJobsPrefersExplicitConfig) {
  EXPECT_EQ(resolve_jobs({5}), 5);
}

TEST(Executor, ResolveJobsReadsEnvironment) {
  ASSERT_EQ(setenv("CASH_JOBS", "3", 1), 0);
  EXPECT_EQ(resolve_jobs({}), 3);
  EXPECT_EQ(resolve_jobs({2}), 2); // explicit config still wins
  ASSERT_EQ(setenv("CASH_JOBS", "garbage", 1), 0);
  EXPECT_GE(resolve_jobs({}), 1); // falls back to hardware_concurrency
  ASSERT_EQ(unsetenv("CASH_JOBS"), 0);
  EXPECT_GE(resolve_jobs({}), 1);
}

} // namespace
} // namespace cash::exec
