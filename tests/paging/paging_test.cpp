// Tests of the paging substrate: demand mapping, translation, guard pages,
// protection bits, and page-crossing accesses.
#include <gtest/gtest.h>

#include "paging/page_table.hpp"
#include "paging/physical_memory.hpp"

namespace cash::paging {
namespace {

TEST(PhysicalMemory, FrameAllocationAndAccess) {
  PhysicalMemory memory(16);
  const std::uint32_t f0 = memory.allocate_frame();
  const std::uint32_t f1 = memory.allocate_frame();
  EXPECT_EQ(f0, 0U);
  EXPECT_EQ(f1, 1U);
  memory.write32(f1 * kPageSize + 8, 0xCAFEBABE);
  EXPECT_EQ(memory.read32(f1 * kPageSize + 8), 0xCAFEBABEU);
  EXPECT_EQ(memory.read8(f1 * kPageSize + 8), 0xBE);
}

TEST(PhysicalMemory, ExhaustionThrows) {
  PhysicalMemory memory(2);
  memory.allocate_frame();
  memory.allocate_frame();
  EXPECT_THROW(memory.allocate_frame(), std::runtime_error);
}

TEST(PageTable, UnmappedAccessFaults) {
  PhysicalMemory memory(16);
  PageTable pages(memory);
  const Result<std::uint32_t> r = pages.translate(0x1000, 4, false, true);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().kind, FaultKind::kPageFault);
  EXPECT_EQ(pages.page_fault_count(), 1U);
}

TEST(PageTable, MapAndTranslate) {
  PhysicalMemory memory(16);
  PageTable pages(memory);
  pages.map_range(0x5000, 100);
  const Result<std::uint32_t> r = pages.translate(0x5010, 4, true, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value() & (kPageSize - 1), 0x10U);
  EXPECT_EQ(pages.mapped_pages(), 1U);
}

TEST(PageTable, MapRangeSpansPages) {
  PhysicalMemory memory(16);
  PageTable pages(memory);
  pages.map_range(0x5FF0, 0x20); // crosses the 0x6000 boundary
  EXPECT_EQ(pages.mapped_pages(), 2U);
  EXPECT_TRUE(pages.translate(0x5FF0, 4, false, true).ok());
  EXPECT_TRUE(pages.translate(0x6000, 4, false, true).ok());
}

TEST(PageTable, GuardPageFaultsAndSurvivesMapping) {
  PhysicalMemory memory(16);
  PageTable pages(memory);
  pages.set_guard(0x7000 >> kPageShift, true);
  // Demand-mapping over the guard must NOT clear it (the Electric-Fence
  // property the Cash MMU relies on).
  pages.map_range(0x7000, 16);
  const Result<std::uint32_t> r = pages.translate(0x7000, 4, false, true);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().kind, FaultKind::kPageFault);
  // Clearing the guard allows mapping again.
  pages.set_guard(0x7000 >> kPageShift, false);
  pages.map_range(0x7000, 16);
  EXPECT_TRUE(pages.translate(0x7000, 4, false, true).ok());
}

TEST(PageTable, ReadOnlyPageRejectsWrites) {
  PhysicalMemory memory(16);
  PageTable pages(memory);
  pages.map_page(3, /*writable=*/false);
  EXPECT_TRUE(pages.translate(3 * kPageSize, 4, false, true).ok());
  EXPECT_FALSE(pages.translate(3 * kPageSize, 4, true, true).ok());
}

TEST(PageTable, SupervisorPageRejectsUserAccess) {
  PhysicalMemory memory(16);
  PageTable pages(memory);
  pages.map_page(4, /*writable=*/true, /*user=*/false);
  EXPECT_FALSE(pages.translate(4 * kPageSize, 4, false, /*user=*/true).ok());
  EXPECT_TRUE(pages.translate(4 * kPageSize, 4, false, /*user=*/false).ok());
}

TEST(PageTable, CrossPageAccessRequiresBothPages) {
  PhysicalMemory memory(16);
  PageTable pages(memory);
  pages.map_page(5);
  // Word at the very end of page 5 spills into unmapped page 6.
  EXPECT_FALSE(
      pages.translate(5 * kPageSize + kPageSize - 2, 4, false, true).ok());
  pages.map_page(6);
  EXPECT_TRUE(
      pages.translate(5 * kPageSize + kPageSize - 2, 4, false, true).ok());
}

TEST(PageTable, DistinctPagesGetDistinctFrames) {
  PhysicalMemory memory(16);
  PageTable pages(memory);
  pages.map_page(10);
  pages.map_page(20);
  const auto a = pages.translate(10 * kPageSize, 4, false, true);
  const auto b = pages.translate(20 * kPageSize, 4, false, true);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value() >> kPageShift, b.value() >> kPageShift);
}

} // namespace
} // namespace cash::paging
