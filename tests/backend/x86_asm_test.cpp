// Tests of the assembly backend: the listings must reproduce the paper's
// Section 3.3 array-access sequence and the Section 3.7 PUSH/POP rewriting.
#include <gtest/gtest.h>

#include "backend/x86_asm.hpp"
#include "core/cash.hpp"
#include "frontend/irgen.hpp"
#include "passes/lower.hpp"
#include "passes/optimize.hpp"

namespace cash::backend {
namespace {

std::unique_ptr<ir::Module> lowered(const char* source,
                                    passes::CheckMode mode,
                                    int seg_regs = 3) {
  DiagnosticSink diagnostics;
  auto module = frontend::compile_to_ir(source, diagnostics);
  EXPECT_NE(module, nullptr) << diagnostics.to_string();
  passes::optimize_module(*module);
  passes::LowerOptions options;
  options.mode = mode;
  options.num_seg_regs = seg_regs;
  passes::lower_module(*module, options);
  return module;
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  std::size_t at = 0;
  while ((at = haystack.find(needle, at)) != std::string::npos) {
    ++count;
    at += needle.size();
  }
  return count;
}

// The paper's Section 3.3 example: A[i] = 10 inside a loop, Cash-compiled,
// must produce the selector load (movw ... %gs-family), the hoisted base
// subtraction, and a segment-prefixed store.
constexpr const char* kPaperExample = R"(
int a[64];
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    a[i] = 10;
  }
  return 0;
}
)";

TEST(X86Asm, CashReproducesTheSection33Sequence) {
  auto module = lowered(kPaperExample, passes::CheckMode::kCash);
  const std::string text = emit_function(*module->find_function("main"));
  // Selector load into ES (the first FCFS register).
  EXPECT_NE(text.find("movw    8(%ecx), %es"), std::string::npos) << text;
  // Hoisted base subtraction feeding the rebased access.
  EXPECT_NE(text.find("subl"), std::string::npos);
  // The store goes through the segment override — where the hardware check
  // happens.
  EXPECT_NE(text.find("%es:(%eax)"), std::string::npos) << text;
  // Exactly one selector load: it was hoisted out of the loop.
  EXPECT_EQ(count_occurrences(text, "movw    8(%ecx)"), 1);
}

TEST(X86Asm, GccModeHasNoSegmentOverrides) {
  auto module = lowered(kPaperExample, passes::CheckMode::kNoCheck);
  const std::string text = emit_function(*module->find_function("main"));
  EXPECT_EQ(text.find("%es:"), std::string::npos);
  EXPECT_EQ(text.find("movw"), std::string::npos);
}

TEST(X86Asm, BccEmitsTheSixInstructionSequence) {
  auto module = lowered(kPaperExample, passes::CheckMode::kBcc);
  const std::string text = emit_function(*module->find_function("main"));
  EXPECT_NE(text.find("jb      .Lbound_violation"), std::string::npos);
  EXPECT_NE(text.find("jae     .Lbound_violation"), std::string::npos);
  // Two compares and two branches per check site.
  EXPECT_EQ(count_occurrences(text, "jb      .Lbound_violation"),
            count_occurrences(text, "jae     .Lbound_violation"));
}

TEST(X86Asm, BoundModeUsesTheBoundInstruction) {
  auto module = lowered(kPaperExample, passes::CheckMode::kBoundInsn);
  const std::string text = emit_function(*module->find_function("main"));
  EXPECT_NE(text.find("boundl"), std::string::npos);
}

// Section 3.7: with use_stack_segreg the prologue, calls and epilogue use
// MOV/SUB instead of PUSH/POP, and SS can be saved/restored like the other
// bound-checking registers.
constexpr const char* kCallExample = R"(
int a[8]; int b[8]; int c[8]; int d[8];
int foo(int x, int y) {
  int i;
  int s = 0;
  for (i = 0; i < 8; i++) {
    d[i] = a[i] + b[i] + c[i];
  }
  return s + x + y;
}
int main() {
  return foo(1, 2);
}
)";

TEST(X86Asm, StackSegregModeEliminatesPushPop) {
  auto module = lowered(kCallExample, passes::CheckMode::kCash, 4);
  AsmOptions options;
  options.use_stack_segreg = true;
  const std::string text = emit_module(*module, options);
  EXPECT_EQ(text.find("pushl"), std::string::npos) << text;
  EXPECT_EQ(text.find("popl"), std::string::npos);
  EXPECT_EQ(text.find("pushw"), std::string::npos);
  // The rewritten forms are present (the paper's foo() listing).
  EXPECT_NE(text.find("subl    $4, %esp"), std::string::npos);
  EXPECT_NE(text.find("%ds:(%esp)"), std::string::npos);
  // SS is genuinely used as the fourth checking register.
  EXPECT_NE(text.find("%ss:("), std::string::npos) << text;
}

TEST(X86Asm, DefaultModeUsesPushPop) {
  auto module = lowered(kCallExample, passes::CheckMode::kCash, 3);
  const std::string text = emit_module(*module);
  EXPECT_NE(text.find("pushl   %ebp"), std::string::npos);
  EXPECT_NE(text.find("pushl"), std::string::npos);
  // Three registers only: SS never appears as an override.
  EXPECT_EQ(text.find("%ss:("), std::string::npos);
}

TEST(X86Asm, ClobberedSegmentRegistersAreSavedAndRestored) {
  auto module = lowered(kCallExample, passes::CheckMode::kCash, 3);
  const std::string text = emit_function(*module->find_function("foo"));
  EXPECT_NE(text.find("pushw   %es"), std::string::npos) << text;
  EXPECT_NE(text.find("popw    %es"), std::string::npos);
  EXPECT_NE(text.find("pushw   %gs"), std::string::npos);
}

TEST(X86Asm, ModuleEmitsGlobalsWithInfoStructure) {
  auto module = lowered(kPaperExample, passes::CheckMode::kCash);
  const std::string text = emit_module(*module);
  // 64 ints + 12-byte info structure.
  EXPECT_NE(text.find(".comm   sym0, 268"), std::string::npos) << text;
  EXPECT_NE(text.find(".text"), std::string::npos);
}

TEST(X86Asm, EveryWorkloadEmitsNonTrivialAssembly) {
  for (passes::CheckMode mode :
       {passes::CheckMode::kNoCheck, passes::CheckMode::kCash,
        passes::CheckMode::kBcc}) {
    auto module = lowered(kCallExample, mode);
    const std::string text = emit_module(*module);
    EXPECT_GT(text.size(), 500U);
    EXPECT_NE(text.find("main:"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
  }
}

} // namespace
} // namespace cash::backend
