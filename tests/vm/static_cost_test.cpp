// Pins the decoder's per-micro-op static costs against the cost-model
// constants in common/costs.hpp, and pins every fused superinstruction's
// cost to the exact sum of its constituents. If a latency constant or the
// fusion pass ever drifts, this test names the op that moved.
#include <gtest/gtest.h>

#include "common/costs.hpp"
#include "vm/decode.hpp"

namespace cash {
namespace {

using costs::StaticCost;
using vm::MicroInstr;
using vm::UOp;

MicroInstr make(UOp op) {
  MicroInstr u;
  u.op = op;
  return u;
}

void expect_cost(const MicroInstr& u, const StaticCost& want,
                 const char* what) {
  const StaticCost got = vm::static_cost(u);
  EXPECT_EQ(got.cycles, want.cycles) << what;
  EXPECT_EQ(got.checking, want.checking) << what;
  EXPECT_EQ(got.shadow, want.shadow) << what;
  EXPECT_EQ(got.ptr_events, want.ptr_events) << what;
  EXPECT_EQ(got.hw_checks, want.hw_checks) << what;
  EXPECT_EQ(got.sw_checks, want.sw_checks) << what;
  EXPECT_EQ(got.calls, want.calls) << what;
}

StaticCost cost_of(std::uint64_t cycles) {
  StaticCost c;
  c.cycles = cycles;
  return c;
}

TEST(StaticCost, RegisterResidentOps) {
  // Constants (int AND float — kConstFloat must not drift from the
  // register-op model), moves, local slot traffic and pointer arithmetic
  // are register-resident: kRegisterOp cycles, no checks.
  for (UOp op : {UOp::kConstInt, UOp::kConstFloat, UOp::kMove,
                 UOp::kLoadLocal, UOp::kStoreLocal, UOp::kPtrAdd}) {
    expect_cost(make(op), cost_of(costs::kRegisterOp), "register-resident");
  }
  // Fat-pointer moves and local slot traffic book one mode-scaled
  // ptr-copy event; pointer-add does not (it folds into addressing).
  for (UOp op : {UOp::kMove, UOp::kLoadLocal, UOp::kStoreLocal}) {
    MicroInstr u = make(op);
    u.is_ptr = true;
    StaticCost want = cost_of(costs::kRegisterOp);
    want.ptr_events = 1;
    expect_cost(u, want, "register-resident ptr");
  }
  MicroInstr padd = make(UOp::kPtrAdd);
  padd.is_ptr = true;
  expect_cost(padd, cost_of(costs::kRegisterOp), "ptr-add never copies");
}

TEST(StaticCost, BinaryAndUnaryOps) {
  MicroInstr u = make(UOp::kBin);
  u.bin_op = ir::BinOp::kAdd;
  expect_cost(u, cost_of(costs::kAluOp), "int add");
  u.bin_op = ir::BinOp::kMul;
  expect_cost(u, cost_of(costs::kMulOp), "mul");
  u.bin_op = ir::BinOp::kDiv;
  expect_cost(u, cost_of(costs::kDivOp), "div");
  u.bin_op = ir::BinOp::kRem;
  u.type = ir::Type::kInt;
  expect_cost(u, cost_of(costs::kDivOp), "int rem");
  u.type = ir::Type::kFloat;
  expect_cost(u, cost_of(costs::kAluOp), "float rem (fmod lowers to alu)");
  expect_cost(make(UOp::kUn), cost_of(costs::kAluOp), "unary");
}

TEST(StaticCost, MemoryOps) {
  // Plain load/store: one L1-hit cycle. Through an array segment
  // (rebased): same cycles plus one hardware-check count — the check
  // itself is free (kHardwareBoundCheck rides the translation pipeline).
  static_assert(costs::kHardwareBoundCheck == 0,
                "hardware checks are architecturally free");
  for (UOp op : {UOp::kLoad, UOp::kStore}) {
    expect_cost(make(op), cost_of(costs::kLoadStore), "load/store");
    MicroInstr checked = make(op);
    checked.rebased = true;
    StaticCost want = cost_of(costs::kLoadStore);
    want.hw_checks = 1;
    expect_cost(checked, want, "hw-checked load/store");
    MicroInstr ptr = make(op);
    ptr.is_ptr = true;
    want = cost_of(costs::kLoadStore);
    want.ptr_events = 1;
    expect_cost(ptr, want, "fat-pointer load/store");
  }
  // Global scalar traffic is never segment-checked.
  for (UOp op : {UOp::kLoadGlobal, UOp::kStoreGlobal}) {
    expect_cost(make(op), cost_of(costs::kLoadStore), "global load/store");
  }
  // Address materialisation costs one ALU op unless lowering synthesised
  // it (folded into the addressing mode).
  for (UOp op : {UOp::kAddrLocal, UOp::kAddrGlobal}) {
    expect_cost(make(op), cost_of(costs::kAluOp), "addr");
    MicroInstr synth = make(op);
    synth.synthetic = true;
    expect_cost(synth, cost_of(0), "synthetic addr");
  }
}

TEST(StaticCost, BoundChecks) {
  StaticCost sw;
  sw.checking = costs::kSoftwareBoundCheck;
  sw.sw_checks = 1;
  expect_cost(make(UOp::kBoundSw), sw, "software check");

  StaticCost bnd;
  bnd.checking = costs::kBoundInstruction;
  bnd.sw_checks = 1;
  expect_cost(make(UOp::kBoundBnd), bnd, "bound instruction");

  StaticCost shadow;
  shadow.checking = 1; // address-queue store on the main CPU
  shadow.shadow = 2 + costs::kSoftwareBoundCheck;
  shadow.sw_checks = 1;
  expect_cost(make(UOp::kBoundShadow), shadow, "shadow check");
}

TEST(StaticCost, ControlFlowAndBuiltins) {
  expect_cost(make(UOp::kJump), cost_of(costs::kBranch), "jump");
  expect_cost(make(UOp::kBranch), cost_of(costs::kBranch), "branch");

  const auto builtin_cost = [](vm::Builtin b, std::uint64_t cycles) {
    MicroInstr u = make(UOp::kBuiltin);
    u.builtin = b;
    StaticCost want = cost_of(cycles);
    want.calls = 1;
    expect_cost(u, want, "builtin");
  };
  for (vm::Builtin b : {vm::Builtin::kSqrt, vm::Builtin::kSin,
                        vm::Builtin::kCos, vm::Builtin::kExp,
                        vm::Builtin::kLog, vm::Builtin::kPow}) {
    builtin_cost(b, costs::kMathBuiltin);
  }
  for (vm::Builtin b :
       {vm::Builtin::kFabs, vm::Builtin::kFloor, vm::Builtin::kAbs}) {
    builtin_cost(b, costs::kAluOp);
  }
  builtin_cost(vm::Builtin::kPrintInt, 10);
  builtin_cost(vm::Builtin::kPrintFloat, 10);
  builtin_cost(vm::Builtin::kRand, 5);
  builtin_cost(vm::Builtin::kSrand, 2);
}

TEST(StaticCost, ItemizedOpsChargeNothingStatically) {
  // Dynamic-cost micro-ops account for themselves in the engine; their
  // static cost must stay zero or the group aggregation double-charges.
  for (UOp op : {UOp::kGroup, UOp::kSegLoad, UOp::kCallUser, UOp::kMalloc,
                 UOp::kFree, UOp::kRet, UOp::kBlockEndError}) {
    expect_cost(make(op), StaticCost{}, "itemized");
  }
}

// Builds the fused op and its constituent sequence side by side and checks
// cost(fused) == Σ cost(constituents), field by field. Fusion never changes
// what is charged — only how many adds charge it.
TEST(StaticCost, FusedOpsEqualConstituentSums) {
  const auto expect_sum = [](const MicroInstr& fused,
                             std::initializer_list<MicroInstr> parts,
                             const char* what) {
    StaticCost want;
    for (const MicroInstr& p : parts) {
      want += vm::static_cost(p);
    }
    expect_cost(fused, want, what);
  };

  for (ir::BinOp bin : {ir::BinOp::kAdd, ir::BinOp::kMul, ir::BinOp::kDiv}) {
    MicroInstr b = make(UOp::kBin);
    b.bin_op = bin;

    MicroInstr cb = make(UOp::kFusedConstBin);
    cb.bin_op = bin;
    expect_sum(cb, {make(UOp::kConstInt), b}, "const+bin");

    MicroInstr lb = make(UOp::kFusedLoadLocalBin);
    lb.bin_op = bin;
    expect_sum(lb, {make(UOp::kLoadLocal), b}, "load-local+bin");

    MicroInstr bs = make(UOp::kFusedBinStoreLocal);
    bs.bin_op = bin;
    expect_sum(bs, {b, make(UOp::kStoreLocal)}, "bin+store-local");

    MicroInstr lbs = make(UOp::kFusedLoadBinStore);
    lbs.bin_op = bin;
    expect_sum(lbs, {make(UOp::kLoadLocal), b, make(UOp::kStoreLocal)},
               "load+bin+store");
  }

  MicroInstr cmp = make(UOp::kBin);
  cmp.bin_op = ir::BinOp::kCmpLt;
  MicroInstr cj = make(UOp::kFusedCmpBranch);
  cj.bin_op = ir::BinOp::kCmpLt;
  expect_sum(cj, {cmp, make(UOp::kBranch)}, "cmp+branch");

  for (UOp bound : {UOp::kBoundSw, UOp::kBoundBnd, UOp::kBoundShadow}) {
    for (bool rebased : {false, true}) {
      for (bool is_ptr : {false, true}) {
        MicroInstr mem_load = make(UOp::kLoad);
        mem_load.rebased = rebased;
        mem_load.is_ptr = is_ptr;
        MicroInstr mem_store = make(UOp::kStore);
        mem_store.rebased = rebased;
        mem_store.is_ptr = is_ptr;

        MicroInstr pb = make(UOp::kFusedPtrAddBound);
        pb.sub_op = bound;
        expect_sum(pb, {make(UOp::kPtrAdd), make(bound)}, "ptradd+bound");

        MicroInstr pbl = make(UOp::kFusedPtrAddBoundLoad);
        pbl.sub_op = bound;
        pbl.rebased = rebased;
        pbl.is_ptr = is_ptr;
        expect_sum(pbl, {make(UOp::kPtrAdd), make(bound), mem_load},
                   "ptradd+bound+load");

        MicroInstr pbs = make(UOp::kFusedPtrAddBoundStore);
        pbs.sub_op = bound;
        pbs.rebased = rebased;
        pbs.is_ptr = is_ptr;
        expect_sum(pbs, {make(UOp::kPtrAdd), make(bound), mem_store},
                   "ptradd+bound+store");

        MicroInstr pl = make(UOp::kFusedPtrAddLoad);
        pl.rebased = rebased;
        pl.is_ptr = is_ptr;
        expect_sum(pl, {make(UOp::kPtrAdd), mem_load}, "ptradd+load");

        MicroInstr ps = make(UOp::kFusedPtrAddStore);
        ps.rebased = rebased;
        ps.is_ptr = is_ptr;
        expect_sum(ps, {make(UOp::kPtrAdd), mem_store}, "ptradd+store");
      }
    }
  }
}

} // namespace
} // namespace cash
