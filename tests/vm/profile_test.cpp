// Tests of the per-function cycle profiler: call counts, self-cycle
// attribution, and completeness (the spans sum back to the total).
#include <gtest/gtest.h>

#include "core/cash.hpp"

namespace cash {
namespace {

constexpr const char* kProgram = R"(
int cheap(int x) { return x + 1; }
int expensive(int x) {
  int i; int s = 0;
  for (i = 0; i < 500; i++) {
    s = s + i * x;
  }
  return s;
}
int main() {
  int i; int s = 0;
  for (i = 0; i < 10; i++) {
    s = s + cheap(i);
  }
  s = s + expensive(3);
  return s;
}
)";

vm::RunResult run(const char* source) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kNoCheck;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  return compiled.program->run();
}

TEST(Profile, CountsCallsPerFunction) {
  const vm::RunResult r = run(kProgram);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.profile.count("main"), 1U);
  ASSERT_EQ(r.profile.count("cheap"), 1U);
  ASSERT_EQ(r.profile.count("expensive"), 1U);
  EXPECT_EQ(r.profile.at("main").calls, 1U);
  EXPECT_EQ(r.profile.at("cheap").calls, 10U);
  EXPECT_EQ(r.profile.at("expensive").calls, 1U);
}

TEST(Profile, ExpensiveFunctionDominates) {
  const vm::RunResult r = run(kProgram);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.profile.at("expensive").self_cycles,
            r.profile.at("cheap").self_cycles * 5);
}

TEST(Profile, SelfCyclesSumToTotal) {
  const vm::RunResult r = run(kProgram);
  ASSERT_TRUE(r.ok);
  std::uint64_t sum = 0;
  for (const auto& [name, prof] : r.profile) {
    sum += prof.self_cycles;
  }
  EXPECT_EQ(sum, r.cycles);
}

TEST(Profile, UncalledFunctionsAreAbsent) {
  const vm::RunResult r = run(R"(
int never(int x) { return x; }
int main() { return 0; }
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.profile.count("never"), 0U);
  EXPECT_EQ(r.profile.count("main"), 1U);
}

TEST(Profile, RecursionAttributesToOneEntry) {
  const vm::RunResult r = run(R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
)");
  ASSERT_TRUE(r.ok);
  // fib(12) makes 465 calls.
  EXPECT_EQ(r.profile.at("fib").calls, 465U);
  EXPECT_GT(r.profile.at("fib").self_cycles,
            r.profile.at("main").self_cycles);
}

} // namespace
} // namespace cash
