// Tests of the cycle breakdown: the invariant that `base` cycles — the
// program's own work — are IDENTICAL across every checking mode for an
// in-bounds run, with the modes differing only in `checking` and `runtime`.
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "workloads/fuzz.hpp"
#include "workloads/workloads.hpp"

namespace cash {
namespace {

using passes::CheckMode;

vm::RunResult run_mode(const std::string& source, CheckMode mode) {
  CompileOptions options;
  options.lower.mode = mode;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  vm::RunResult run = compiled.program->run();
  EXPECT_TRUE(run.ok) << (run.fault ? run.fault->detail : run.error);
  return run;
}

TEST(Breakdown, BucketsSumToTotal) {
  const vm::RunResult r =
      run_mode(workloads::matmul_source(16), CheckMode::kCash);
  EXPECT_EQ(r.breakdown.total(), r.cycles);
  EXPECT_GT(r.breakdown.base, 0U);
  EXPECT_GT(r.breakdown.runtime, 0U);  // segment set-up happened
  EXPECT_GT(r.breakdown.checking, 0U); // segment loads happened
}

TEST(Breakdown, BaseCyclesAreModeInvariant) {
  for (const std::string& source :
       {workloads::matmul_source(16), workloads::gauss_source(12),
        workloads::generate_fuzz_program(3),
        workloads::generate_fuzz_program(11)}) {
    const std::uint64_t reference =
        run_mode(source, CheckMode::kNoCheck).breakdown.base;
    for (CheckMode mode : {CheckMode::kBcc, CheckMode::kCash,
                           CheckMode::kBoundInsn, CheckMode::kEfence}) {
      const vm::RunResult r = run_mode(source, mode);
      EXPECT_EQ(r.breakdown.base, reference)
          << to_string(mode) << ": the base bucket leaked mode-dependent "
          << "cycles";
    }
  }
}

TEST(Breakdown, NoCheckModeHasZeroCheckingCycles) {
  const vm::RunResult r =
      run_mode(workloads::matmul_source(16), CheckMode::kNoCheck);
  EXPECT_EQ(r.breakdown.checking, 0U);
  EXPECT_EQ(r.breakdown.runtime, 0U);
}

TEST(Breakdown, BccCheckingBucketMatchesCheckCountTimesSix) {
  const vm::RunResult r =
      run_mode(workloads::matmul_source(16), CheckMode::kBcc);
  EXPECT_EQ(r.breakdown.checking, r.counters.sw_checks * 6);
}

TEST(Breakdown, CashChecksAreSetupNotPerReference) {
  // The defining Cash property, stated as bucket arithmetic: its checking
  // bucket scales with loop entries (segment loads), not with the number
  // of checked references.
  const vm::RunResult cash_r =
      run_mode(workloads::matmul_source(24), CheckMode::kCash);
  ASSERT_GT(cash_r.counters.hw_checked_accesses, 10000U);
  EXPECT_EQ(cash_r.breakdown.checking, cash_r.counters.seg_reg_loads * 6);
  EXPECT_LT(cash_r.breakdown.checking,
            cash_r.counters.hw_checked_accesses / 10);
}

} // namespace
} // namespace cash
