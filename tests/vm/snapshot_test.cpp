// Machine snapshot/restore (vm/snapshot.hpp): restoring the post-init
// image must be indistinguishable from building a fresh machine and
// replaying the init — the contract netsim's fork-from-snapshot path rests
// on. Covered here at machine level: repeated restores, global/heap/RNG
// rollback, armed fault plans (injector state rewinds too), Electric-Fence
// guard pages, and both execution engines.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/cash.hpp"
#include "vm/snapshot.hpp"

#include "run_result_compare.hpp"

namespace cash {
namespace {

using passes::CheckMode;
using vm::expect_identical;

constexpr const char* kServer = R"(
int table[32];
int hits;
int *scratch;
int server_init() {
  int i;
  for (i = 0; i < 32; i++) { table[i] = i * 3; }
  scratch = malloc(64);
  return 0;
}
int handle_request() {
  int buf[16];
  int i; int n; int s;
  hits = hits + 1;
  n = rand() % 8 + 4;
  s = 0;
  for (i = 0; i < 16; i++) {
    buf[i] = table[(i + n) % 32];
    scratch[i % 16] = buf[i] + hits;
    s = s + buf[i] + scratch[i % 16];
  }
  return s + hits;
}
int main() { server_init(); return handle_request(); }
)";

std::unique_ptr<CompiledProgram> compile_server(CheckMode mode,
                                                bool predecode = true) {
  CompileOptions options;
  options.lower.mode = mode;
  options.machine.enable_predecode = predecode;
  CompileResult compiled = compile(kServer, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  return std::move(compiled.program);
}

// Fresh machine + server_init replay: the reference way to materialise the
// post-init parent image (what netsim's replay path does per request).
std::unique_ptr<vm::Machine> fresh_after_init(const CompiledProgram& program) {
  std::unique_ptr<vm::Machine> m = program.make_machine();
  const vm::RunResult init = m->run_function("server_init");
  EXPECT_TRUE(init.ok) << (init.fault ? init.fault->detail : init.error);
  return m;
}

TEST(Snapshot, RestoreEqualsFreshReplay) {
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kBcc,
                         CheckMode::kCash, CheckMode::kShadow}) {
    auto program = compile_server(mode);
    std::unique_ptr<vm::Machine> snap_machine = fresh_after_init(*program);
    std::unique_ptr<vm::MachineSnapshot> snap = snap_machine->capture();

    // Serve "requests" 0..4 from the one machine via restore; compare each
    // against a brand-new machine that replays server_init.
    for (std::uint32_t seed = 0; seed < 5; ++seed) {
      if (seed != 0) {
        snap_machine->restore(*snap);
      }
      snap_machine->reseed(100 + seed);
      const vm::RunResult from_snapshot =
          snap_machine->run_function("handle_request");

      std::unique_ptr<vm::Machine> replayed = fresh_after_init(*program);
      replayed->reseed(100 + seed);
      const vm::RunResult from_replay =
          replayed->run_function("handle_request");

      expect_identical(from_replay, from_snapshot,
                       "seed=" + std::to_string(100 + seed));
      EXPECT_TRUE(from_snapshot.ok);
    }
  }
}

TEST(Snapshot, RollsBackGlobalsHeapAndRng) {
  // Without restore, the handler's global counter and heap writes leak into
  // the next run (that is what the replay path avoids by rebuilding). With
  // restore, every run is the first run.
  auto program = compile_server(CheckMode::kCash);
  std::unique_ptr<vm::Machine> m = fresh_after_init(*program);
  std::unique_ptr<vm::MachineSnapshot> snap = m->capture();

  m->reseed(7);
  const vm::RunResult first = m->run_function("handle_request");
  ASSERT_TRUE(first.ok);

  // No restore: `hits` has advanced, results differ.
  m->reseed(7);
  const vm::RunResult dirty = m->run_function("handle_request");
  ASSERT_TRUE(dirty.ok);
  EXPECT_NE(first.exit_code, dirty.exit_code);

  // Restore: bit-identical to the first run, as often as we like.
  for (int i = 0; i < 3; ++i) {
    m->restore(*snap);
    m->reseed(7);
    const vm::RunResult again = m->run_function("handle_request");
    expect_identical(first, again, "restore " + std::to_string(i));
  }
}

TEST(Snapshot, WorksUnderArmedFaultPlan) {
  // The injector's RNG and hit counters are part of the snapshot: a
  // restored machine must replay the same injected-fault pattern a fresh
  // machine would.
  faultinject::FaultPlan plan;
  plan.seed = 3;
  plan.rules.push_back({faultinject::FaultSite::kSegCacheProbe, 0, 2, 0, 1});

  CompileOptions options;
  options.lower.mode = CheckMode::kCash;
  options.machine.fault_plan = plan;
  CompileResult compiled = compile(kServer, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const CompiledProgram& program = *compiled.program;

  std::unique_ptr<vm::Machine> snap_machine = fresh_after_init(program);
  std::unique_ptr<vm::MachineSnapshot> snap = snap_machine->capture();
  for (std::uint32_t seed = 0; seed < 3; ++seed) {
    if (seed != 0) {
      snap_machine->restore(*snap);
    }
    snap_machine->reseed(50 + seed);
    const vm::RunResult from_snapshot =
        snap_machine->run_function("handle_request");

    std::unique_ptr<vm::Machine> replayed = fresh_after_init(program);
    replayed->reseed(50 + seed);
    const vm::RunResult from_replay =
        replayed->run_function("handle_request");
    expect_identical(from_replay, from_snapshot,
                     "armed seed=" + std::to_string(50 + seed));
    EXPECT_GT(from_snapshot.fault_stats.hits_at(
                  faultinject::FaultSite::kSegCacheProbe),
              0u);
  }
}

TEST(Snapshot, EfenceGuardPagesRewind) {
  // Electric-Fence plants and clears guard pages per allocation; the PTE
  // journal must rewind them so a restored machine faults (or not) exactly
  // like a fresh one.
  auto program = compile_server(CheckMode::kEfence);
  std::unique_ptr<vm::Machine> snap_machine = fresh_after_init(*program);
  std::unique_ptr<vm::MachineSnapshot> snap = snap_machine->capture();
  for (std::uint32_t seed = 0; seed < 3; ++seed) {
    if (seed != 0) {
      snap_machine->restore(*snap);
    }
    snap_machine->reseed(seed);
    const vm::RunResult from_snapshot =
        snap_machine->run_function("handle_request");

    std::unique_ptr<vm::Machine> replayed = fresh_after_init(*program);
    replayed->reseed(seed);
    const vm::RunResult from_replay =
        replayed->run_function("handle_request");
    expect_identical(from_replay, from_snapshot,
                     "efence seed=" + std::to_string(seed));
  }
}

TEST(Snapshot, ComposesWithBothEngines) {
  // capture/restore must not care which engine runs between them.
  for (bool predecode : {true, false}) {
    auto program = compile_server(CheckMode::kCash, predecode);
    std::unique_ptr<vm::Machine> m = fresh_after_init(*program);
    std::unique_ptr<vm::MachineSnapshot> snap = m->capture();
    m->reseed(9);
    const vm::RunResult first = m->run_function("handle_request");
    m->restore(*snap);
    m->reseed(9);
    const vm::RunResult again = m->run_function("handle_request");
    expect_identical(first, again,
                     std::string("predecode=") + (predecode ? "on" : "off"));
  }
}

TEST(Snapshot, RecaptureRebaselines) {
  // A machine tracks against its most recent capture: capture, mutate,
  // capture again — restores rewind to the *second* image.
  auto program = compile_server(CheckMode::kCash);
  std::unique_ptr<vm::Machine> m = fresh_after_init(*program);
  std::unique_ptr<vm::MachineSnapshot> first = m->capture();
  m->reseed(1);
  const vm::RunResult warm = m->run_function("handle_request");
  ASSERT_TRUE(warm.ok);
  (void)first;

  std::unique_ptr<vm::MachineSnapshot> second = m->capture();
  m->reseed(2);
  const vm::RunResult a = m->run_function("handle_request");
  m->restore(*second);
  m->reseed(2);
  const vm::RunResult b = m->run_function("handle_request");
  expect_identical(a, b, "recapture");
}

TEST(Snapshot, PrepareCaptureRestoreEqualsFreshRun) {
  // The bench-grid contract (bench_util.hpp SnapshotRunner): prepare()
  // performs the one-time program load but keeps the set-up cycles pending,
  // so prepare() + capture() + restore() + run() must be bit-identical to a
  // fresh machine's first full run — including the runtime breakdown that
  // books the program/array set-up. Repeated restore+run cycles must all
  // replay that first run exactly.
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kBcc,
                         CheckMode::kCash, CheckMode::kBoundInsn,
                         CheckMode::kEfence, CheckMode::kShadow}) {
    auto program = compile_server(mode);
    const vm::RunResult fresh = program->make_machine()->run();

    std::unique_ptr<vm::Machine> m = program->make_machine();
    m->prepare();
    m->prepare(); // idempotent
    std::unique_ptr<vm::MachineSnapshot> snap = m->capture();
    for (int rep = 0; rep < 3; ++rep) {
      m->restore(*snap);
      const vm::RunResult warm = m->run();
      expect_identical(fresh, warm,
                       "prepare/restore rep=" + std::to_string(rep));
    }
  }
}

TEST(Snapshot, RestoreUnderActiveSchedulerEqualsFreshReplay) {
  // netsim's fork-from-snapshot under multi-tenant serving: the parent is
  // captured while its process sits on the run queue, mid-quantum. The
  // scheduler scalars ride the snapshot, so a restore rewinds quantum
  // progress, run-queue membership and the scheduling aggregates along
  // with the memory image — and the served request stays bit-identical to
  // a fresh replay on an unscheduled kernel.
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kBcc,
                         CheckMode::kCash}) {
    auto program = compile_server(mode);
    std::unique_ptr<vm::Machine> m = fresh_after_init(*program);
    kernel::KernelSim& kern = m->kernel();
    kern.sched_configure({4096});
    kern.sched_attach(m->pid());
    kern.sched_charge(1234); // capture lands mid-quantum
    ASSERT_EQ(kern.sched_quantum_used(), 1234u);

    std::unique_ptr<vm::MachineSnapshot> snap = m->capture();
    const kernel::SchedulerStats at_capture = kern.sched_stats();

    for (std::uint32_t seed = 0; seed < 3; ++seed) {
      if (seed != 0) {
        m->restore(*snap);
      }
      m->reseed(200 + seed);
      const vm::RunResult from_snapshot =
          m->run_function("handle_request");

      std::unique_ptr<vm::Machine> replayed = fresh_after_init(*program);
      replayed->reseed(200 + seed);
      const vm::RunResult from_replay =
          replayed->run_function("handle_request");
      expect_identical(from_replay, from_snapshot,
                       "sched seed=" + std::to_string(200 + seed));

      // Perturb the scheduler between serves: burn quanta, then drop off
      // the run queue entirely. The next restore must undo all of it.
      kern.sched_charge(9000);
      kern.sched_detach(m->pid());
      EXPECT_FALSE(kern.sched_attached(m->pid()));
    }
    m->restore(*snap);
    EXPECT_TRUE(kern.sched_attached(m->pid()));
    EXPECT_EQ(kern.sched_quantum_used(), 1234u);
    EXPECT_EQ(kern.sched_stats(), at_capture);
  }
}

TEST(Snapshot, SchedulerComposesWithArmedFaultPlan) {
  // Mid-quantum capture plus an armed injector: both the scheduler scalars
  // and the injector RNG/hit counters must rewind together.
  faultinject::FaultPlan plan;
  plan.seed = 3;
  plan.rules.push_back({faultinject::FaultSite::kSegCacheProbe, 0, 2, 0, 1});

  CompileOptions options;
  options.lower.mode = CheckMode::kCash;
  options.machine.fault_plan = plan;
  CompileResult compiled = compile(kServer, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const CompiledProgram& program = *compiled.program;

  std::unique_ptr<vm::Machine> m = fresh_after_init(program);
  kernel::KernelSim& kern = m->kernel();
  kern.sched_configure({512});
  kern.sched_attach(m->pid());
  kern.sched_charge(100);
  std::unique_ptr<vm::MachineSnapshot> snap = m->capture();

  for (std::uint32_t seed = 0; seed < 3; ++seed) {
    if (seed != 0) {
      m->restore(*snap);
    }
    m->reseed(70 + seed);
    const vm::RunResult from_snapshot = m->run_function("handle_request");

    std::unique_ptr<vm::Machine> replayed = fresh_after_init(program);
    replayed->reseed(70 + seed);
    const vm::RunResult from_replay =
        replayed->run_function("handle_request");
    expect_identical(from_replay, from_snapshot,
                     "sched armed seed=" + std::to_string(70 + seed));
    EXPECT_GT(from_snapshot.fault_stats.hits_at(
                  faultinject::FaultSite::kSegCacheProbe),
              0u);
    EXPECT_EQ(kern.sched_quantum_used(), 100u);
  }
}

TEST(Snapshot, FaultingRunRewindsCleanly) {
  // A run that ends in a bound violation leaves partially-mutated state;
  // restore must rewind that too.
  constexpr const char* kFaulty = R"(
int buf[8];
int server_init() {
  int i;
  for (i = 0; i < 8; i++) { buf[i] = i; }
  return 0;
}
int handle_request() {
  int i;
  for (i = 0; i < 20; i++) { buf[i] = i; }
  return 0;
}
int main() { return 0; }
)";
  CompileOptions options;
  options.lower.mode = CheckMode::kCash;
  CompileResult compiled = compile(kFaulty, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;

  std::unique_ptr<vm::Machine> m = compiled.program->make_machine();
  ASSERT_TRUE(m->run_function("server_init").ok);
  std::unique_ptr<vm::MachineSnapshot> snap = m->capture();

  const vm::RunResult crash1 = m->run_function("handle_request");
  EXPECT_TRUE(crash1.fault.has_value());
  m->restore(*snap);
  const vm::RunResult crash2 = m->run_function("handle_request");
  expect_identical(crash1, crash2, "faulting run");
}

TEST(Snapshot, CapturesMidTraceFormation) {
  // The hot-trace engine's state — per-block heat counters, formed
  // superblocks, lifetime stats — is part of the snapshot. kServer's init
  // loop (32 iterations) is past the formation threshold (16) when
  // capture() runs, while handle_request's loop is still cold: restoring
  // must put both halves of that mid-formation picture back exactly, so
  // every restore replays the fresh-replay trajectory bit for bit,
  // including the trace activity itself.
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kCash,
                         CheckMode::kShadow}) {
    auto program = compile_server(mode);
    ASSERT_TRUE(program->options().machine.enable_trace);
    std::unique_ptr<vm::Machine> m = fresh_after_init(*program);
    std::unique_ptr<vm::MachineSnapshot> snap = m->capture();

    bool any_trace = false;
    for (std::uint32_t seed = 0; seed < 4; ++seed) {
      if (seed != 0) {
        m->restore(*snap);
      }
      m->reseed(40 + seed);
      const vm::RunResult from_snapshot = m->run_function("handle_request");

      std::unique_ptr<vm::Machine> replayed = fresh_after_init(*program);
      replayed->reseed(40 + seed);
      const vm::RunResult from_replay =
          replayed->run_function("handle_request");

      const std::string ctx = "mode=" + std::to_string(static_cast<int>(mode)) +
                              " seed=" + std::to_string(40 + seed);
      expect_identical(from_replay, from_snapshot, ctx);
      // trace_stats is exempt from expect_identical (host-side, like
      // tlb_stats) — pin it explicitly: restored trace state must replay
      // the same formation/execution trajectory a fresh machine produces.
      EXPECT_EQ(from_replay.trace_stats.traces_formed,
                from_snapshot.trace_stats.traces_formed)
          << ctx;
      EXPECT_EQ(from_replay.trace_stats.trace_execs,
                from_snapshot.trace_stats.trace_execs)
          << ctx;
      EXPECT_EQ(from_replay.trace_stats.guard_exits,
                from_snapshot.trace_stats.guard_exits)
          << ctx;
      EXPECT_EQ(from_replay.trace_stats.trace_instructions,
                from_snapshot.trace_stats.trace_instructions)
          << ctx;
      any_trace |= from_snapshot.trace_stats.trace_execs > 0;
    }
    // The warm-started machine actually runs inside superblocks — the
    // comparison above is not vacuous.
    EXPECT_TRUE(any_trace) << "mode=" << static_cast<int>(mode);
  }
}

} // namespace
} // namespace cash
