// Bit-transparency of the pre-decoded micro-op engine (vm/decode.hpp):
// for every program, check mode and failure flavour, the fast engine and
// the reference interpreter must produce *identical* RunResults — cycles,
// breakdowns, shadow cycles, every counter, segment/heap/kernel stats,
// per-function profiles, fault details and printed output. Host-side TLB
// statistics are the one documented exemption.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/cash.hpp"
#include "vm/decode.hpp"

#include "run_result_compare.hpp"

namespace cash {
namespace {

using passes::CheckMode;

constexpr CheckMode kAllModes[] = {CheckMode::kNoCheck,   CheckMode::kBcc,
                                   CheckMode::kCash,      CheckMode::kBoundInsn,
                                   CheckMode::kEfence,    CheckMode::kShadow};

const char* mode_name(CheckMode mode) {
  switch (mode) {
    case CheckMode::kNoCheck:   return "nocheck";
    case CheckMode::kBcc:       return "bcc";
    case CheckMode::kCash:      return "cash";
    case CheckMode::kBoundInsn: return "boundinsn";
    case CheckMode::kEfence:    return "efence";
    case CheckMode::kShadow:    return "shadow";
  }
  return "?";
}

using vm::expect_identical; // run_result_compare.hpp

// Compiles `source` for `mode` and runs it on all three engines — fused
// micro-op stream (the default), unfused plain stream, and the reference
// interpreter — comparing the complete RunResult pairwise. `entry` selects
// run_function (nullptr = run main).
void run_both(const std::string& source, CheckMode mode,
              std::uint64_t max_instructions = 0,
              const char* entry = nullptr) {
  CompileOptions options;
  options.lower.mode = mode;
  if (max_instructions != 0) {
    options.machine.max_instructions = max_instructions;
  }
  CompileResult compiled = compile(source, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  ASSERT_NE(compiled.program->decoded(), nullptr);
  EXPECT_TRUE(compiled.program->decoded()->ok());

  vm::MachineConfig unfused_cfg = compiled.program->options().machine;
  unfused_cfg.enable_fusion = false;
  vm::MachineConfig slow_cfg = compiled.program->options().machine;
  slow_cfg.enable_predecode = false;
  std::unique_ptr<vm::Machine> fast = compiled.program->make_machine();
  std::unique_ptr<vm::Machine> unfused =
      compiled.program->make_machine(unfused_cfg);
  std::unique_ptr<vm::Machine> slow =
      compiled.program->make_machine(slow_cfg);
  const vm::RunResult rf =
      entry != nullptr ? fast->run_function(entry) : fast->run();
  const vm::RunResult ru =
      entry != nullptr ? unfused->run_function(entry) : unfused->run();
  const vm::RunResult rs =
      entry != nullptr ? slow->run_function(entry) : slow->run();
  std::string ctx = std::string("mode=") + mode_name(mode);
  if (entry != nullptr) {
    ctx += std::string(" entry=") + entry;
  }
  if (max_instructions != 0) {
    ctx += " max=" + std::to_string(max_instructions);
  }
  expect_identical(rs, rf, ctx + " [fused vs interp]");
  expect_identical(rs, ru, ctx + " [unfused vs interp]");
}

void run_all_modes(const std::string& source,
                   std::uint64_t max_instructions = 0,
                   const char* entry = nullptr) {
  for (CheckMode mode : kAllModes) {
    run_both(source, mode, max_instructions, entry);
  }
}

// Exercises every IR opcode the decoder lowers: integer and float
// constants, every binary and unary operator, global scalars and arrays,
// local scalars and arrays, heap pointers parked in memory, nested and
// recursive calls, branches, loops, and all the statically-costed builtins.
constexpr const char* kEveryOpcode = R"(
int gtable[32];
int gscalar;
int *stash;
float accum;
int fill(int n) {
  int i;
  for (i = 0; i < n; i++) {
    gtable[i] = i * 3 - (i % 5) + (i / 2);
  }
  return n;
}
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int bits(int x) {
  return ((x & 5) | (x ^ 3)) + (x << 2) + (x >> 1) + ~x + !x;
}
float mathy(float x) {
  return sqrt(x) + fabs(0.0 - x) + sin(x) + cos(x) + exp(x / 8.0) +
         log(x + 1.0) + floor(x * 1.5) + pow(x, 2.0);
}
int locals(int n) {
  int buf[16];
  int i; int s;
  s = 0;
  for (i = 0; i < 16; i++) {
    buf[i] = gtable[(i + n) % 32] + bits(i);
    s = s + buf[i];
  }
  return s;
}
int heapwork(int n) {
  int *p;
  int i; int s;
  p = malloc(64);
  stash = p;
  p = stash;
  for (i = 0; i < 16; i++) {
    p[i] = i * n;
  }
  s = 0;
  for (i = 0; i < 16; i++) {
    s = s + p[i];
  }
  free(p);
  return s;
}
int main() {
  int i; int s;
  srand(99);
  fill(32);
  gscalar = bits(rand() % 100);
  accum = mathy(2.5);
  s = 0;
  for (i = 0; i < 4; i++) {
    s = s + locals(i) + heapwork(i) + fib(9);
  }
  print_int(s);
  print_int(gscalar);
  print_float(accum);
  print_int(abs(0 - s));
  if (s > 0 && gscalar < 100000) { print_int(1); } else { print_int(0); }
  if (s < 0 || gscalar > 0 - 100000) { print_int(2); }
  return s % 251;
}
)";

TEST(DecodeTransparency, EveryOpcodeEveryMode) {
  run_all_modes(kEveryOpcode);
}

TEST(DecodeTransparency, GlobalArrayOverflowEveryMode) {
  // In checked modes the fault fires (same kind, detail, partial charges);
  // in kNoCheck the write lands and both engines see the same final state.
  run_all_modes(R"(
int buf[8];
int smash(int n) {
  int i;
  for (i = 0; i < n; i++) {
    buf[i] = i;
  }
  return buf[0];
}
int main() { return smash(20); }
)");
}

TEST(DecodeTransparency, LocalArrayOverflowEveryMode) {
  run_all_modes(R"(
int smash(int n) {
  int buf[4];
  int i; int s;
  s = 0;
  for (i = 0; i < n; i++) {
    buf[i] = i;
    s = s + buf[i];
  }
  return s;
}
int main() { return smash(9); }
)");
}

TEST(DecodeTransparency, HeapOverflowThroughStoredPointerEveryMode) {
  run_all_modes(R"(
int *stash;
int main() {
  int *p;
  int i;
  p = malloc(32);
  stash = p;
  p = stash;
  for (i = 0; i < 20; i++) {
    p[i] = i;
  }
  return 0;
}
)");
}

TEST(DecodeTransparency, DivideByZeroFault) {
  // #DE is raised mid-group: the engine must charge the group prefix plus
  // the faulting op in full, exactly like the interpreter's per-op path.
  run_all_modes(R"(
int main() {
  int d; int i; int s;
  d = 0;
  s = 0;
  for (i = 0; i < 3; i++) { s = s + i; }
  return s / d;
}
)");
  run_all_modes(R"(
int main() {
  int d;
  d = 0;
  return 7 % d;
}
)");
}

TEST(DecodeTransparency, InstructionBudgetSweep) {
  // The budget must abort at the *same* instruction with the same partial
  // cycle charges whether the stream is folded or itemized. Sweep the cap
  // across group boundaries, call sites and the entry prologue.
  constexpr const char* kProgram = R"(
int work(int n) {
  int buf[8];
  int i; int s;
  s = 0;
  for (i = 0; i < n; i++) {
    buf[i % 8] = i;
    s = s + buf[i % 8];
  }
  return s;
}
int main() {
  int t;
  t = work(6) + work(3);
  print_int(t);
  return t;
}
)";
  for (std::uint64_t max = 1; max <= 40; ++max) {
    run_both(kProgram, CheckMode::kCash, max);
    run_both(kProgram, CheckMode::kNoCheck, max);
  }
  run_both(kProgram, CheckMode::kBcc, 13);
  run_both(kProgram, CheckMode::kShadow, 17);
}

TEST(DecodeTransparency, BudgetInsideInfiniteLoop) {
  run_all_modes("int main() { while (1) {} return 0; }", 10000);
}

TEST(DecodeTransparency, StackOverflowFromDeepRecursion) {
  // Each frame carries a 16 KB local array; the 64 MB simulated stack
  // overflows a few thousand frames down, in the prologue — both engines
  // must report the identical error at the identical depth.
  run_both(R"(
int deep(int n) {
  int pad[4096];
  pad[0] = n;
  if (n == 0) { return 0; }
  return deep(n - 1) + pad[0];
}
int main() { return deep(1000000); }
)",
           CheckMode::kNoCheck);
}

TEST(DecodeTransparency, RunFunctionEntryPoints) {
  constexpr const char* kServer = R"(
int table[16];
int server_init() {
  int i;
  for (i = 0; i < 16; i++) { table[i] = i * 7; }
  return 0;
}
int handle_request() {
  int i; int s;
  s = 0;
  for (i = 0; i < 16; i++) { s = s + table[i] + rand() % 5; }
  return s;
}
int main() { server_init(); return handle_request(); }
)";
  run_all_modes(kServer, 0, "server_init");
  run_all_modes(kServer, 0, "handle_request");
}

TEST(DecodeTransparency, UnknownEntryFunction) {
  run_both("int main() { return 0; }", CheckMode::kCash, 0, "no_such_fn");
}

TEST(DecodeTransparency, RepeatedRunsAccumulateIdentically) {
  // Globals and the heap persist across runs of one machine; the engines
  // must agree run after run, not just on a fresh machine.
  constexpr const char* kCounter = R"(
int counter;
int main() {
  counter = counter + 1;
  print_int(counter);
  return counter;
}
)";
  CompileOptions options;
  options.lower.mode = CheckMode::kCash;
  CompileResult compiled = compile(kCounter, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  vm::MachineConfig slow_cfg = compiled.program->options().machine;
  slow_cfg.enable_predecode = false;
  std::unique_ptr<vm::Machine> fast = compiled.program->make_machine();
  std::unique_ptr<vm::Machine> slow =
      compiled.program->make_machine(slow_cfg);
  for (int i = 0; i < 3; ++i) {
    expect_identical(slow->run(), fast->run(),
                     "run " + std::to_string(i));
  }
}

TEST(DecodeTransparency, EnvVarForcesInterpreter) {
  // $CASH_NO_PREDECODE must win over config.enable_predecode — and, being
  // a host-side toggle, must not change results either.
  constexpr const char* kSmall = "int main() { return 41 + 1; }";
  CompileOptions options;
  CompileResult compiled = compile(kSmall, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const vm::RunResult fast = compiled.program->make_machine()->run();
  ::setenv("CASH_NO_PREDECODE", "1", 1);
  const vm::RunResult forced = compiled.program->make_machine()->run();
  ::unsetenv("CASH_NO_PREDECODE");
  expect_identical(forced, fast, "env toggle");
  EXPECT_EQ(fast.exit_code, 42);
}

TEST(DecodeTransparency, DirectMachineHasNoDecodedImage) {
  // A Machine constructed straight from the Module never runs fast — that
  // keeps differential coverage of the reference interpreter alive even
  // where callers forget to thread the decoded image through.
  constexpr const char* kSmall = "int main() { return 7; }";
  CompileResult compiled = compile(kSmall, {});
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  vm::Machine direct(compiled.program->module(),
                     compiled.program->options().machine);
  const vm::RunResult r = direct.run();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.exit_code, 7);
}

TEST(DecodeTransparency, DecodedImageIsWellFormed) {
  CompileResult compiled = compile(kEveryOpcode, {});
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const vm::DecodedProgram* decoded = compiled.program->decoded();
  ASSERT_NE(decoded, nullptr);
  ASSERT_TRUE(decoded->ok());
  // Checks one member stream: every group header's member count covers
  // in-bounds micro-ops, the header maps to a FoldedGroup whose count equals
  // the sum of the members' IR widths, and a terminator appears only as the
  // last member of its group.
  const auto check_stream = [](const vm::DecodedFunction& fn,
                               const vm::UopStream& stream, bool fused) {
    for (std::size_t i = 0; i < stream.uops.size(); ++i) {
      const vm::MicroInstr& u = stream.uops[i];
      if (u.op != vm::UOp::kGroup) {
        continue;
      }
      ASSERT_LE(i + 1 + u.imm, stream.uops.size());
      ASSERT_LT(u.aux, stream.groups.size());
      const vm::FoldedGroup& grp = stream.groups[u.aux];
      std::uint32_t ir_width = 0;
      for (std::uint32_t m = 0; m < u.imm; ++m) {
        const vm::MicroInstr& member = stream.uops[i + 1 + m];
        ir_width += vm::uop_width(member.op);
        const bool terminator = member.op == vm::UOp::kJump ||
                                member.op == vm::UOp::kBranch ||
                                member.op == vm::UOp::kFusedCmpBranch;
        if (terminator) {
          EXPECT_EQ(m, u.imm - 1)
              << "terminator mid-group in " << fn.fn->name;
        }
        if (!fused) {
          EXPECT_EQ(vm::uop_width(member.op), 1u)
              << "fused micro-op in the plain stream of " << fn.fn->name;
        }
      }
      // Group headers of both streams describe the same IR instructions.
      EXPECT_EQ(ir_width, grp.count) << "stream=" << (fused ? "fused" : "plain")
                                     << " fn=" << fn.fn->name;
    }
  };
  bool any_fused = false;
  for (const vm::DecodedFunction& fn : decoded->functions()) {
    ASSERT_TRUE(fn.ok);
    ASSERT_NE(fn.fn, nullptr);
    check_stream(fn, fn.plain, /*fused=*/false);
    check_stream(fn, fn.fused, /*fused=*/true);
    // The two streams agree on group metadata (the cold fault path relies
    // on plain_first no matter which stream was hot).
    ASSERT_EQ(fn.plain.groups.size(), fn.fused.groups.size());
    for (std::size_t g = 0; g < fn.plain.groups.size(); ++g) {
      EXPECT_EQ(fn.plain.groups[g].count, fn.fused.groups[g].count);
      EXPECT_EQ(fn.plain.groups[g].plain_first, fn.fused.groups[g].plain_first);
    }
    EXPECT_LE(fn.fused.uops.size(), fn.plain.uops.size());
    EXPECT_LE(fn.stats.fused_instrs, fn.stats.foldable_instrs);
    any_fused |= fn.stats.fused_uops > 0;
  }
  // The every-opcode corpus must exercise the fusion pass.
  EXPECT_TRUE(any_fused);
  EXPECT_GT(decoded->fusion_stats().hit_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// Fusion-boundary sweep (superinstruction stream vs plain stream vs
// interpreter). run_both already compares all three engines, so these cases
// focus on sources whose hot paths sit *inside* fused pairs/triples.

// Array walk whose inner loop is ptr-add + bound + load/store — the
// three-wide fusion patterns — with an out-of-bounds final iteration so the
// fault fires mid-fused-group.
constexpr const char* kFusedOverflow = R"(
int a[8];
int main() {
  int i;
  for (i = 0; i <= 8; i = i + 1) {
    a[i] = i * 3;
  }
  return a[7];
}
)";

// In-bounds variant: same shapes, runs to completion.
constexpr const char* kFusedClean = R"(
int a[16];
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 16; i = i + 1) {
    a[i] = i * 2 + 1;
  }
  for (i = 0; i < 16; i = i + 1) {
    s = s + a[i];
  }
  return s;
}
)";

// Divide inside a const+bin fused pair faults on the last iteration.
constexpr const char* kFusedDivFault = R"(
int main() {
  int i;
  int s;
  s = 0;
  for (i = 3; i >= 0; i = i - 1) {
    s = s + 100 / i;
  }
  return s;
}
)";

TEST(DecodeFusion, FaultInsideFusedGroupEveryMode) {
  run_all_modes(kFusedOverflow);
}

TEST(DecodeFusion, CleanFusedKernelsEveryMode) {
  run_all_modes(kFusedClean);
}

TEST(DecodeFusion, DivideFaultInsideFusedPair) {
  for (CheckMode mode : kAllModes) {
    run_both(kFusedDivFault, mode);
  }
}

TEST(DecodeFusion, BudgetExpiresMidFusion) {
  // Sweep the instruction budget one IR instruction at a time across fused
  // kernels: every cut point — including ones that land between the
  // constituents of a fused pair/triple — must truncate identically to the
  // interpreter (fault detail, partial charges, instruction count).
  for (std::uint64_t max = 1; max <= 60; ++max) {
    run_both(kFusedClean, CheckMode::kCash, max);
    run_both(kFusedOverflow, CheckMode::kBoundInsn, max);
  }
  for (std::uint64_t max = 1; max <= 30; ++max) {
    run_both(kFusedDivFault, CheckMode::kShadow, max);
  }
}

TEST(DecodeFusion, PtrEventsScaleAcrossModes) {
  // Fat-pointer word copies are charged per mode (Cash = 1, Bcc/BoundInsn =
  // 2, others 0) at run time from mode-neutral ptr_events — fused ops must
  // preserve that scaling. Checked implicitly by run_both's three-way
  // comparison; here also pin the relative counter relationship.
  const auto count_copies = [](CheckMode mode) {
    CompileOptions options;
    options.lower.mode = mode;
    CompileResult compiled = compile(kFusedClean, options);
    EXPECT_TRUE(compiled.ok()) << compiled.error;
    const vm::RunResult r = compiled.program->make_machine()->run();
    EXPECT_TRUE(r.ok) << r.error;
    return r.counters.ptr_word_copies;
  };
  const std::uint64_t cash = count_copies(CheckMode::kCash);
  const std::uint64_t bcc = count_copies(CheckMode::kBcc);
  const std::uint64_t none = count_copies(CheckMode::kNoCheck);
  EXPECT_EQ(none, 0u);
  EXPECT_EQ(bcc, 2 * cash);
}

TEST(DecodeFusion, EnvVarDisablesFusion) {
  CompileOptions options;
  options.lower.mode = CheckMode::kCash;
  CompileResult compiled = compile(kFusedClean, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const vm::RunResult fused = compiled.program->make_machine()->run();
  ::setenv("CASH_NO_FUSION", "1", 1);
  const vm::RunResult plain = compiled.program->make_machine()->run();
  ::unsetenv("CASH_NO_FUSION");
  expect_identical(plain, fused, "CASH_NO_FUSION toggle");
}

TEST(DecodeFusion, HitRateGuardsEmptyDenominator) {
  // hit_rate() must be a plain 0.0 — never NaN — when fusion has nothing
  // to work with, both for a default-constructed FusionStats and for a
  // program whose only loop body is a single instruction (no adjacent
  // pair for the fusion pass to merge).
  const vm::FusionStats empty;
  EXPECT_EQ(empty.hit_rate(), 0.0);

  constexpr const char* kOneInstrLoop = R"(
int main() {
  int i;
  for (i = 9; i; i = i - 1) { }
  return i;
}
)";
  CompileOptions options;
  options.lower.mode = CheckMode::kNoCheck;
  CompileResult compiled = compile(kOneInstrLoop, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  ASSERT_NE(compiled.program->decoded(), nullptr);
  const double rate = compiled.program->decoded()->fusion_stats().hit_rate();
  EXPECT_FALSE(std::isnan(rate));
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  for (CheckMode mode : kAllModes) {
    run_both(kOneInstrLoop, mode);
  }
}

// ---------------------------------------------------------------------------
// Hot-trace superblock sweeps (DESIGN.md §11). run_both's fast machine
// runs with the default config — traces on, threshold 16 — so every case
// here compares the trace engine against the plain stream and the
// interpreter.

// A 30-iteration loop whose body is ~6 statements; statement `fault_stmt`
// (if >= 0) faults on iteration 24 — past the formation threshold, so the
// fault lands *inside* the formed superblock, at a different micro-op
// offset (including inside trace-time peephole superinstructions) for
// each position. `bound_flavor` swaps the divide-by-zero for an
// out-of-bounds store, exercising the checked-store fault paths instead.
std::string superblock_fault_source(int fault_stmt, bool bound_flavor) {
  std::string body;
  for (int j = 0; j < 6; ++j) {
    if (j == fault_stmt) {
      body += bound_flavor
                  ? "    buf[(i / 24) * 99] = s;\n"
                  : "    d = i - 24;\n    s = s + 100 / d;\n";
    } else {
      body += "    buf[(i + " + std::to_string(j) + ") % 16] = s + " +
              std::to_string(j) + ";\n    s = s + buf[(i * " +
              std::to_string(j + 2) + ") % 16];\n";
    }
  }
  return "int buf[16];\nint main() {\n  int i; int s; int d;\n  s = 1;\n"
         "  for (i = 0; i < 30; i = i + 1) {\n" +
         body + "  }\n  return s;\n}\n";
}

vm::TraceStats trace_stats_of(const std::string& source, CheckMode mode) {
  CompileOptions options;
  options.lower.mode = mode;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  return compiled.program->make_machine()->run().trace_stats;
}

TEST(DecodeTrace, FaultAtEveryUopOffsetInsideSuperblock) {
  for (int flavor = 0; flavor < 2; ++flavor) {
    for (int k = 0; k < 6; ++k) {
      const std::string src =
          superblock_fault_source(k, /*bound_flavor=*/flavor == 1);
      for (CheckMode mode : kAllModes) {
        run_both(src, mode);
      }
      // The fault really lands mid-trace: the superblock formed and ran
      // before iteration 24 reached the poisoned statement.
      const vm::TraceStats stats = trace_stats_of(src, CheckMode::kCash);
      EXPECT_GT(stats.traces_formed, 0u) << "stmt=" << k;
      EXPECT_GT(stats.trace_execs, 0u) << "stmt=" << k;
    }
  }
}

TEST(DecodeTrace, BudgetExpiresInsideSuperblock) {
  // Budget cut points swept across the region where the superblock is hot:
  // truncation must land on the exact same IR instruction, with the same
  // partial charges, whether the engine was mid-trace or not.
  const std::string clean = superblock_fault_source(-1, false);
  const vm::TraceStats stats = trace_stats_of(clean, CheckMode::kCash);
  ASSERT_GT(stats.trace_execs, 0u);
  for (std::uint64_t max = 300; max <= 420; ++max) {
    run_both(clean, CheckMode::kCash, max);
  }
  for (std::uint64_t max = 300; max <= 360; ++max) {
    run_both(clean, CheckMode::kBoundInsn, max);
    run_both(clean, CheckMode::kShadow, max);
  }
}

TEST(DecodeTrace, EnvVarDisablesTraces) {
  const std::string src = superblock_fault_source(-1, false);
  CompileOptions options;
  options.lower.mode = CheckMode::kCash;
  CompileResult compiled = compile(src, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;

  vm::MachineConfig off_cfg = compiled.program->options().machine;
  off_cfg.enable_trace = false;
  const vm::RunResult traced = compiled.program->make_machine()->run();
  const vm::RunResult config_off =
      compiled.program->make_machine(off_cfg)->run();
  ::setenv("CASH_NO_TRACE", "1", 1);
  const vm::RunResult env_off = compiled.program->make_machine()->run();
  ::unsetenv("CASH_NO_TRACE");

  EXPECT_GT(traced.trace_stats.traces_formed, 0u);
  EXPECT_EQ(config_off.trace_stats.traces_formed, 0u);
  EXPECT_EQ(env_off.trace_stats.traces_formed, 0u);
  EXPECT_EQ(env_off.trace_stats.trace_execs, 0u);
  expect_identical(config_off, traced, "trace on vs enable_trace=false");
  expect_identical(config_off, env_off, "enable_trace=false vs CASH_NO_TRACE");
}

} // namespace
} // namespace cash
