#pragma once

// Full-RunResult equality used by the fast-path transparency suites
// (decode_test, snapshot_test): every simulated field must match
// bit-for-bit. Host-side TLB statistics are the documented exemption and
// are deliberately not compared.

#include <gtest/gtest.h>

#include <string>

#include "vm/machine.hpp"

namespace cash::vm {

inline void expect_identical(const RunResult& ref, const RunResult& fast,
                             const std::string& ctx) {
  EXPECT_EQ(ref.ok, fast.ok) << ctx;
  ASSERT_EQ(ref.fault.has_value(), fast.fault.has_value()) << ctx;
  if (ref.fault && fast.fault) {
    EXPECT_EQ(ref.fault->kind, fast.fault->kind) << ctx;
    EXPECT_EQ(ref.fault->linear_address, fast.fault->linear_address) << ctx;
    EXPECT_EQ(ref.fault->selector, fast.fault->selector) << ctx;
    EXPECT_EQ(ref.fault->detail, fast.fault->detail) << ctx;
  }
  EXPECT_EQ(ref.error, fast.error) << ctx;
  EXPECT_EQ(ref.exit_code, fast.exit_code) << ctx;
  EXPECT_EQ(ref.cycles, fast.cycles) << ctx;
  EXPECT_EQ(ref.breakdown.base, fast.breakdown.base) << ctx;
  EXPECT_EQ(ref.breakdown.checking, fast.breakdown.checking) << ctx;
  EXPECT_EQ(ref.breakdown.runtime, fast.breakdown.runtime) << ctx;
  EXPECT_EQ(ref.shadow_cycles, fast.shadow_cycles) << ctx;
  EXPECT_EQ(ref.counters.instructions, fast.counters.instructions) << ctx;
  EXPECT_EQ(ref.counters.hw_checked_accesses,
            fast.counters.hw_checked_accesses)
      << ctx;
  EXPECT_EQ(ref.counters.sw_checks, fast.counters.sw_checks) << ctx;
  EXPECT_EQ(ref.counters.seg_reg_loads, fast.counters.seg_reg_loads) << ctx;
  EXPECT_EQ(ref.counters.ptr_word_copies, fast.counters.ptr_word_copies)
      << ctx;
  EXPECT_EQ(ref.counters.calls, fast.counters.calls) << ctx;
  EXPECT_EQ(ref.counters.malloc_calls, fast.counters.malloc_calls) << ctx;
  EXPECT_EQ(ref.segment_stats.alloc_requests,
            fast.segment_stats.alloc_requests)
      << ctx;
  EXPECT_EQ(ref.segment_stats.cache_hits, fast.segment_stats.cache_hits)
      << ctx;
  EXPECT_EQ(ref.segment_stats.kernel_allocs, fast.segment_stats.kernel_allocs)
      << ctx;
  EXPECT_EQ(ref.segment_stats.releases, fast.segment_stats.releases) << ctx;
  EXPECT_EQ(ref.segment_stats.global_fallbacks,
            fast.segment_stats.global_fallbacks)
      << ctx;
  EXPECT_EQ(ref.segment_stats.extra_ldts_created,
            fast.segment_stats.extra_ldts_created)
      << ctx;
  EXPECT_EQ(ref.segment_stats.gate_busy_retries,
            fast.segment_stats.gate_busy_retries)
      << ctx;
  EXPECT_EQ(ref.segment_stats.budget_fallbacks,
            fast.segment_stats.budget_fallbacks)
      << ctx;
  EXPECT_EQ(ref.segment_stats.segments_in_use,
            fast.segment_stats.segments_in_use)
      << ctx;
  EXPECT_EQ(ref.segment_stats.peak_segments, fast.segment_stats.peak_segments)
      << ctx;
  EXPECT_EQ(ref.heap_stats.malloc_calls, fast.heap_stats.malloc_calls) << ctx;
  EXPECT_EQ(ref.heap_stats.free_calls, fast.heap_stats.free_calls) << ctx;
  EXPECT_EQ(ref.heap_stats.bytes_allocated, fast.heap_stats.bytes_allocated)
      << ctx;
  EXPECT_EQ(ref.heap_stats.guard_pages, fast.heap_stats.guard_pages) << ctx;
  EXPECT_EQ(ref.kernel_account.kernel_cycles,
            fast.kernel_account.kernel_cycles)
      << ctx;
  EXPECT_EQ(ref.kernel_account.modify_ldt_calls,
            fast.kernel_account.modify_ldt_calls)
      << ctx;
  EXPECT_EQ(ref.kernel_account.call_gate_calls,
            fast.kernel_account.call_gate_calls)
      << ctx;
  EXPECT_EQ(ref.kernel_account.ldt_switches, fast.kernel_account.ldt_switches)
      << ctx;
  EXPECT_EQ(ref.kernel_account.ldts_created, fast.kernel_account.ldts_created)
      << ctx;
  EXPECT_EQ(ref.kernel_account.context_switches_in,
            fast.kernel_account.context_switches_in)
      << ctx;
  EXPECT_EQ(ref.fault_stats.hits, fast.fault_stats.hits) << ctx;
  EXPECT_EQ(ref.fault_stats.injected, fast.fault_stats.injected) << ctx;
  ASSERT_EQ(ref.profile.size(), fast.profile.size()) << ctx;
  for (const auto& [name, prof] : ref.profile) {
    const auto it = fast.profile.find(name);
    ASSERT_NE(it, fast.profile.end()) << ctx << " fn=" << name;
    EXPECT_EQ(prof.calls, it->second.calls) << ctx << " fn=" << name;
    EXPECT_EQ(prof.self_cycles, it->second.self_cycles)
        << ctx << " fn=" << name;
  }
  EXPECT_EQ(ref.output, fast.output) << ctx;
}

} // namespace cash::vm
