#pragma once

// gtest adapter over the shared comparator in
// src/common/run_result_compare.hpp: asserts full simulated-field
// equality and, on failure, names the first diverging field the same way
// the bench divergence gates do.

#include <gtest/gtest.h>

#include <string>

#include "common/run_result_compare.hpp"

namespace cash::vm {

inline void expect_identical(const RunResult& ref, const RunResult& fast,
                             const std::string& ctx) {
  const std::string diff = first_run_result_difference(ref, fast);
  EXPECT_TRUE(diff.empty()) << ctx << ": first diverging field: " << diff;
}

} // namespace cash::vm
