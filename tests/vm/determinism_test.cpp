// Regression guard for the host-side fast paths (software TLB, segment
// fast path, call-resolution cache): the simulated machine must be
// bit-identical with the TLB on and off, in every check mode, for both
// clean runs and faulting runs. The TLB is a host optimization only — if
// any simulated cycle, counter, or fault leaks from it, these tests fail.
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "vm/machine.hpp"
#include "workloads/workloads.hpp"

namespace cash {
namespace {

using passes::CheckMode;

constexpr CheckMode kAllModes[] = {CheckMode::kNoCheck,   CheckMode::kBcc,
                                   CheckMode::kCash,      CheckMode::kBoundInsn,
                                   CheckMode::kEfence,    CheckMode::kShadow};

vm::RunResult run_with_tlb(const CompiledProgram& program, CheckMode mode,
                           bool enable_tlb) {
  vm::MachineConfig cfg = program.options().machine;
  cfg.mode = mode;
  cfg.enable_tlb = enable_tlb;
  vm::Machine machine(program.module(), cfg);
  return machine.run();
}

void expect_identical(const vm::RunResult& on, const vm::RunResult& off,
                      CheckMode mode) {
  const char* m = to_string(mode);
  EXPECT_EQ(on.ok, off.ok) << m;
  EXPECT_EQ(on.cycles, off.cycles) << m;
  EXPECT_EQ(on.shadow_cycles, off.shadow_cycles) << m;
  EXPECT_EQ(on.breakdown.base, off.breakdown.base) << m;
  EXPECT_EQ(on.breakdown.checking, off.breakdown.checking) << m;
  EXPECT_EQ(on.breakdown.runtime, off.breakdown.runtime) << m;
  EXPECT_EQ(on.exit_code, off.exit_code) << m;
  EXPECT_EQ(on.output, off.output) << m;
  EXPECT_EQ(on.counters.instructions, off.counters.instructions) << m;
  EXPECT_EQ(on.counters.hw_checked_accesses, off.counters.hw_checked_accesses)
      << m;
  EXPECT_EQ(on.counters.sw_checks, off.counters.sw_checks) << m;
  EXPECT_EQ(on.counters.seg_reg_loads, off.counters.seg_reg_loads) << m;
  EXPECT_EQ(on.counters.ptr_word_copies, off.counters.ptr_word_copies) << m;
  EXPECT_EQ(on.counters.calls, off.counters.calls) << m;
  EXPECT_EQ(on.counters.malloc_calls, off.counters.malloc_calls) << m;
  ASSERT_EQ(on.fault.has_value(), off.fault.has_value()) << m;
  if (on.fault.has_value()) {
    EXPECT_EQ(on.fault->kind, off.fault->kind) << m;
    EXPECT_EQ(on.fault->detail, off.fault->detail) << m;
  }
  // The off run must genuinely have bypassed the TLB.
  EXPECT_EQ(off.tlb_stats.hits, 0U) << m;
  EXPECT_EQ(off.tlb_stats.misses, 0U) << m;
}

TEST(Determinism, AllModesIdenticalWithTlbOnAndOff) {
  const std::string source = workloads::matmul_source(12);
  for (CheckMode mode : kAllModes) {
    CompileOptions options;
    options.lower.mode = mode;
    CompileResult compiled = compile(source, options);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    const vm::RunResult on = run_with_tlb(*compiled.program, mode, true);
    const vm::RunResult off = run_with_tlb(*compiled.program, mode, false);
    EXPECT_TRUE(on.ok) << to_string(mode);
    expect_identical(on, off, mode);
  }
}

TEST(Determinism, EfenceOverflowFaultsIdenticallyWithTlbOnAndOff) {
  // The guard-page #PF that implements Electric-Fence bound detection must
  // fire at exactly the same point whether or not the page was TLB-cached.
  constexpr const char* kOverflow = R"(
int main() {
  int *p;
  int i;
  p = malloc(32);
  for (i = 0; i <= 8; i = i + 1) {
    p[i] = 7;
  }
  return 0;
}
)";
  CompileOptions options;
  options.lower.mode = CheckMode::kEfence;
  CompileResult compiled = compile(kOverflow, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const vm::RunResult on =
      run_with_tlb(*compiled.program, CheckMode::kEfence, true);
  const vm::RunResult off =
      run_with_tlb(*compiled.program, CheckMode::kEfence, false);
  EXPECT_FALSE(on.ok);
  ASSERT_TRUE(on.fault.has_value());
  EXPECT_EQ(on.fault->kind, FaultKind::kPageFault);
  expect_identical(on, off, CheckMode::kEfence);
}

TEST(Determinism, CashOverflowFaultsIdenticallyWithTlbOnAndOff) {
  // A segment-limit violation (the Cash check itself) with the fast path
  // active: the #GP and every counter must match the TLB-off run.
  constexpr const char* kOverflow = R"(
int a[8];
int main() {
  int i;
  for (i = 0; i <= 8; i = i + 1) {
    a[i] = 7;
  }
  return 0;
}
)";
  CompileOptions options;
  options.lower.mode = CheckMode::kCash;
  CompileResult compiled = compile(kOverflow, options);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  const vm::RunResult on =
      run_with_tlb(*compiled.program, CheckMode::kCash, true);
  const vm::RunResult off =
      run_with_tlb(*compiled.program, CheckMode::kCash, false);
  EXPECT_FALSE(on.ok);
  ASSERT_TRUE(on.fault.has_value());
  expect_identical(on, off, CheckMode::kCash);
}

} // namespace
} // namespace cash
