// Interpreter tests: arithmetic semantics, control flow, recursion,
// builtins, fault handling, cost accounting, and the segment-register
// save/restore discipline across calls.
#include <gtest/gtest.h>

#include "core/cash.hpp"

namespace cash {
namespace {

using passes::CheckMode;

vm::RunResult run_src(const std::string& source,
                      CheckMode mode = CheckMode::kNoCheck) {
  CompileOptions options;
  options.lower.mode = mode;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  if (!compiled.ok()) {
    return {};
  }
  return compiled.program->run();
}

TEST(Vm, IntegerArithmeticSemantics) {
  const vm::RunResult r = run_src(R"(
int main() {
  print_int(7 / 2);
  print_int(0 - 7 / 2);
  print_int(7 % 3);
  print_int((0 - 7) % 3);
  print_int(5 & 3);
  print_int(5 | 3);
  print_int(5 ^ 3);
  print_int(1 << 10);
  print_int(0 - 16 >> 2);
  print_int(~0);
  print_int(!3);
  print_int(!0);
  return 0;
}
)");
  ASSERT_TRUE(r.ok) << (r.fault ? r.fault->detail : r.error);
  EXPECT_EQ(r.output, "3\n-3\n1\n-1\n1\n7\n6\n1024\n-4\n-1\n0\n1\n");
}

TEST(Vm, FloatArithmeticAndConversions) {
  const vm::RunResult r = run_src(R"(
int main() {
  float f = 7.5;
  int t = f;
  print_int(t);
  print_float(f / 2.0);
  print_float(1 + 0.5);
  print_int(2.9);
  return 0;
}
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.output, "7\n3.75\n1.5\n2\n");
}

TEST(Vm, ShortCircuitEvaluationSkipsRhs) {
  const vm::RunResult r = run_src(R"(
int g;
int bump() { g = g + 1; return 1; }
int main() {
  int x;
  x = 0 && bump();
  x = 1 || bump();
  print_int(g);
  x = 1 && bump();
  x = 0 || bump();
  print_int(g);
  return x;
}
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.output, "0\n2\n");
}

TEST(Vm, RecursionWorks) {
  const vm::RunResult r = run_src(R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() {
  print_int(fib(15));
  return 0;
}
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.output, "610\n");
}

TEST(Vm, RecursionWithLocalArraysReleasesSegments) {
  const vm::RunResult r = run_src(R"(
int depth(int n) {
  int scratch[8];
  scratch[n % 8] = n;
  if (n == 0) { return 0; }
  return scratch[n % 8] + depth(n - 1);
}
int main() {
  print_int(depth(20));
  return 0;
}
)",
                                  CheckMode::kCash);
  ASSERT_TRUE(r.ok) << (r.fault ? r.fault->detail : r.error);
  EXPECT_EQ(r.output, "210\n");
  // Every allocated segment was released on return.
  EXPECT_EQ(r.segment_stats.segments_in_use, 0U);
  EXPECT_EQ(r.segment_stats.alloc_requests, 21U);
}

TEST(Vm, CalleeClobberedSegmentRegistersAreRestored) {
  // The inner function uses ES (its own first array); the caller's loop
  // also uses ES. Without save/restore the caller's access after the call
  // would go through the callee's segment and fault.
  const vm::RunResult r = run_src(R"(
int helper(int x) {
  int tiny[2];
  int i;
  for (i = 0; i < 2; i++) {
    tiny[i] = x;
  }
  return tiny[0];
}
int big[64];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 64; i++) {
    big[i] = i;
    s = s + helper(i) + big[i];
  }
  print_int(s);
  return 0;
}
)",
                                  CheckMode::kCash);
  ASSERT_TRUE(r.ok) << (r.fault ? r.fault->detail : r.error);
  EXPECT_EQ(r.output, std::to_string(64 * 63 / 2 * 2) + "\n");
}

TEST(Vm, DeterministicRandIsSeedable) {
  const char* source = R"(
int main() {
  print_int(rand());
  print_int(rand());
  return 0;
}
)";
  CompileOptions options;
  options.machine.rng_seed = 7;
  CompileResult compiled = compile(source, options);
  ASSERT_TRUE(compiled.ok());
  const vm::RunResult a = compiled.program->run();
  const vm::RunResult b = compiled.program->run();
  EXPECT_EQ(a.output, b.output); // same seed, same stream

  CompileOptions other;
  other.machine.rng_seed = 8;
  CompileResult compiled2 = compile(source, other);
  ASSERT_TRUE(compiled2.ok());
  EXPECT_NE(compiled2.program->run().output, a.output);
}

TEST(Vm, InstructionBudgetStopsInfiniteLoops) {
  CompileOptions options;
  options.machine.max_instructions = 10000;
  CompileResult compiled = compile("int main() { while (1) {} return 0; }",
                                   options);
  ASSERT_TRUE(compiled.ok());
  const vm::RunResult r = compiled.program->run();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("budget"), std::string::npos);
}

TEST(Vm, GlobalScalarsPersistAcrossCalls) {
  const vm::RunResult r = run_src(R"(
int counter;
void tick() { counter = counter + 1; }
int main() {
  int i;
  for (i = 0; i < 5; i++) { tick(); }
  print_int(counter);
  return counter;
}
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.exit_code, 5);
}

TEST(Vm, PointerThroughMemoryKeepsShadowInfo) {
  // A pointer parked in a global scalar and reloaded must still carry its
  // bound metadata: the overflow through it is caught.
  const vm::RunResult r = run_src(R"(
int *stash;
int main() {
  int *p;
  int i;
  p = malloc(32);
  stash = p;
  p = stash;
  for (i = 0; i < 20; i++) {
    p[i] = i;
  }
  return 0;
}
)",
                                  CheckMode::kCash);
  EXPECT_FALSE(r.ok);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_TRUE(r.bound_violation());
}

TEST(Vm, CyclesAreMonotoneInWork) {
  const vm::RunResult small = run_src(
      "int main() { int i; int s = 0; "
      "for (i = 0; i < 10; i++) { s = s + i; } return s; }");
  const vm::RunResult large = run_src(
      "int main() { int i; int s = 0; "
      "for (i = 0; i < 1000; i++) { s = s + i; } return s; }");
  ASSERT_TRUE(small.ok && large.ok);
  EXPECT_GT(large.cycles, small.cycles);
  EXPECT_GT(large.counters.instructions, small.counters.instructions);
}

TEST(Vm, MathBuiltins) {
  const vm::RunResult r = run_src(R"(
int main() {
  print_float(sqrt(16.0));
  print_float(fabs(0.0 - 2.5));
  print_float(floor(2.75));
  print_float(pow(2.0, 10.0));
  print_int(abs(0 - 42));
  return 0;
}
)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.output, "4\n2.5\n2\n1024\n42\n");
}

TEST(Vm, FaultDetailNamesFunctionAndLine) {
  const vm::RunResult r = run_src(R"(
int buf[4];
int smash() {
  int i;
  for (i = 0; i < 9; i++) {
    buf[i] = i;
  }
  return 0;
}
int main() { return smash(); }
)",
                                  CheckMode::kCash);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_NE(r.fault->detail.find("smash"), std::string::npos);
  EXPECT_NE(r.fault->detail.find("line"), std::string::npos);
}

} // namespace
} // namespace cash
