// Netsim harness tests: the fork-inheritance measurement model, request
// variation, determinism, and penalty computation.
#include <gtest/gtest.h>

#include "netsim/netsim.hpp"
#include "workloads/workloads.hpp"

namespace cash::netsim {
namespace {

// Each simulated request is one fork of the post-init parent image, so the
// 3-entry segment cache starts cold in every child: the handler calls its
// worker function twice so the second call's local array re-uses the
// segment the first call freed (a per-request cache hit, as in the paper's
// request handlers that allocate many buffers per request).
constexpr const char* kTinyServer = R"(
int table[64];
int server_init() {
  int i;
  for (i = 0; i < 64; i++) {
    table[i] = i * 3;
  }
  return 0;
}
int sum_chunk(int reps) {
  int buf[64];
  int i; int r; int s;
  s = 0;
  for (r = 0; r < reps; r++) {
    for (i = 0; i < 64; i++) {
      buf[i] = table[i] + r;
      s = s + buf[i];
    }
  }
  return s;
}
int handle_request() {
  int n;
  n = rand() % 12 + 4;
  return sum_chunk(n) + sum_chunk(n);
}
int main() {
  server_init();
  return handle_request();
}
)";

CompileResult compile_mode(passes::CheckMode mode) {
  CompileOptions options;
  options.lower.mode = mode;
  return compile(kTinyServer, options);
}

TEST(Netsim, MeasuresPositiveLatencyAndThroughput) {
  CompileResult program = compile_mode(passes::CheckMode::kNoCheck);
  ASSERT_TRUE(program.ok()) << program.error;
  const ServerMetrics m = serve_requests(*program.program, 100);
  EXPECT_EQ(m.requests, 100);
  EXPECT_GT(m.mean_latency_cycles, 0);
  EXPECT_GT(m.throughput_rps, 0);
  // Throughput can never exceed 1/latency (fork overhead only adds time).
  EXPECT_LE(m.throughput_rps, kClockHz / m.mean_latency_cycles * 1.0001);
}

TEST(Netsim, DeterministicAcrossRuns) {
  CompileResult program = compile_mode(passes::CheckMode::kNoCheck);
  ASSERT_TRUE(program.ok());
  const ServerMetrics a = serve_requests(*program.program, 50);
  const ServerMetrics b = serve_requests(*program.program, 50);
  EXPECT_EQ(a.mean_latency_cycles, b.mean_latency_cycles);
}

TEST(Netsim, SeedBaseVariesTheRequestMix) {
  CompileResult program = compile_mode(passes::CheckMode::kNoCheck);
  ASSERT_TRUE(program.ok());
  const ServerMetrics a = serve_requests(*program.program, 50, 1);
  const ServerMetrics b = serve_requests(*program.program, 50, 5000);
  EXPECT_NE(a.mean_latency_cycles, b.mean_latency_cycles);
}

TEST(Netsim, CashCostsMoreThanBaselineButLittle) {
  CompileResult gcc = compile_mode(passes::CheckMode::kNoCheck);
  CompileResult cash_p = compile_mode(passes::CheckMode::kCash);
  ASSERT_TRUE(gcc.ok() && cash_p.ok());
  const ServerMetrics base = serve_requests(*gcc.program, 200);
  const ServerMetrics cash_m = serve_requests(*cash_p.program, 200);
  EXPECT_GT(cash_m.mean_latency_cycles, base.mean_latency_cycles);
  // The per-request segment churn is served by the 3-entry cache.
  EXPECT_GT(cash_m.cache_hits, 0U);
  const double penalty =
      penalty_pct(base.mean_latency_cycles, cash_m.mean_latency_cycles);
  EXPECT_LT(penalty, 40.0);
}

TEST(Netsim, PenaltyHelper) {
  EXPECT_DOUBLE_EQ(penalty_pct(100.0, 110.0), 10.0);
  EXPECT_DOUBLE_EQ(penalty_pct(0.0, 5.0), 0.0);
}

TEST(Netsim, MissingHandlerThrows) {
  CompileOptions options;
  CompileResult program = compile("int main() { return 0; }", options);
  ASSERT_TRUE(program.ok());
  EXPECT_THROW((void)serve_requests(*program.program, 1),
               std::runtime_error);
}

TEST(Netsim, EveryNetworkAppServesRequestsInBothModes) {
  for (const auto& w : workloads::network_suite()) {
    for (passes::CheckMode mode :
         {passes::CheckMode::kNoCheck, passes::CheckMode::kCash}) {
      CompileOptions options;
      options.lower.mode = mode;
      CompileResult program = compile(w.source, options);
      ASSERT_TRUE(program.ok()) << w.name << ": " << program.error;
      const ServerMetrics m = serve_requests(*program.program, 25);
      EXPECT_GT(m.mean_latency_cycles, 0) << w.name;
    }
  }
}

} // namespace
} // namespace cash::netsim
