// Production serving-loop tests: latency distributions, mixed request
// classes (including deliberately faulty handlers), the arrival/queueing
// model, connection churn, and snapshot-pool accounting. The bit-identity
// side (snapshot vs replay, armed vs unarmed, thread counts) is covered in
// tests/exec/parallel_invariance_test.cpp; this suite pins the load-model
// semantics themselves.
#include <gtest/gtest.h>

#include <cstdlib>

#include "netsim/netsim.hpp"

namespace cash::netsim {
namespace {

constexpr const char* kMixServer = R"(
int table[64];
int bad[4];
int server_init() {
  int i;
  for (i = 0; i < 64; i++) {
    table[i] = i * 3;
  }
  return 0;
}
int sum_chunk(int reps) {
  int buf[64];
  int i; int r; int s;
  s = 0;
  for (r = 0; r < reps; r++) {
    for (i = 0; i < 64; i++) {
      buf[i] = table[i] + r;
      s = s + buf[i];
    }
  }
  return s;
}
int handle_request() {
  int n;
  n = rand() % 12 + 4;
  return sum_chunk(n) + sum_chunk(n);
}
int handle_large() {
  int n;
  n = rand() % 8 + 24;
  return sum_chunk(n) + sum_chunk(n) + sum_chunk(n);
}
int handle_bad() {
  int i;
  i = rand() % 4 + 6;
  while (i <= 12) {
    bad[i] = i;
    i = i + 1;
  }
  return bad[0];
}
int main() {
  server_init();
  return handle_request();
}
)";

CompileResult compile_mode(passes::CheckMode mode) {
  CompileOptions options;
  options.lower.mode = mode;
  return compile(kMixServer, options);
}

TEST(ServeLoop, LatencyDistributionIsExactAndOrdered) {
  CompileResult program = compile_mode(passes::CheckMode::kCash);
  ASSERT_TRUE(program.ok()) << program.error;
  const ServerMetrics m = serve_requests(*program.program, 100);
  // With the default ServeOptions (no queue, no churn) per-request latency
  // is exactly the per-request CPU cycles.
  EXPECT_EQ(m.total_latency_cycles, m.total_cpu_cycles);
  EXPECT_GT(m.p50_latency_cycles, 0u);
  EXPECT_LE(m.p50_latency_cycles, m.p90_latency_cycles);
  EXPECT_LE(m.p90_latency_cycles, m.p99_latency_cycles);
  EXPECT_LE(m.p99_latency_cycles, m.max_latency_cycles);
  // rand() % 12 varies the handler's work, so the distribution has spread.
  EXPECT_LT(m.p50_latency_cycles, m.max_latency_cycles);
  // Nearest-rank percentiles are order statistics: actual observed values,
  // so the mean lies between the extremes.
  EXPECT_GE(m.mean_latency_cycles, 0.0);
  EXPECT_LE(m.mean_latency_cycles,
            static_cast<double>(m.max_latency_cycles));
  // Implicit single class mirrors the global distribution.
  ASSERT_EQ(m.classes.size(), 1u);
  EXPECT_EQ(m.classes[0].name, "default");
  EXPECT_EQ(m.classes[0].requests, 100u);
  EXPECT_EQ(m.classes[0].p99_latency_cycles, m.p99_latency_cycles);
  EXPECT_EQ(m.classes[0].max_latency_cycles, m.max_latency_cycles);
}

TEST(ServeLoop, MixedClassesSplitDeterministically) {
  CompileResult program = compile_mode(passes::CheckMode::kCash);
  ASSERT_TRUE(program.ok()) << program.error;
  ServeOptions serve;
  serve.classes = {{"small", "handle_request", 3}, {"large", "handle_large", 1}};
  const ServerMetrics m = serve_requests(*program.program, 200, 5, {}, {}, serve);
  ASSERT_EQ(m.classes.size(), 2u);
  const ClassMetrics& small = m.classes[0];
  const ClassMetrics& large = m.classes[1];
  EXPECT_EQ(small.requests + large.requests, 200u);
  // 3:1 weights: both classes are exercised and small dominates.
  EXPECT_GT(small.requests, large.requests);
  EXPECT_GT(large.requests, 0u);
  // handle_large does ~3x the work of handle_request.
  EXPECT_GT(large.p50_latency_cycles, small.p50_latency_cycles);
  // Per-class cycles sum to the global aggregate.
  EXPECT_EQ(small.total_cpu_cycles + large.total_cpu_cycles,
            m.total_cpu_cycles);
  // The split is a pure function of (seed_base, index): same inputs, same
  // split; a different seed_base draws a different mix.
  const ServerMetrics again =
      serve_requests(*program.program, 200, 5, {}, {}, serve);
  EXPECT_EQ(first_metrics_difference(m, again), "");
  const ServerMetrics other =
      serve_requests(*program.program, 200, 99, {}, {}, serve);
  EXPECT_NE(first_metrics_difference(m, other), "");
}

TEST(ServeLoop, FaultyClassIsRecordedNotThrown) {
  CompileResult program = compile_mode(passes::CheckMode::kCash);
  ASSERT_TRUE(program.ok()) << program.error;
  ServeOptions serve;
  serve.classes = {{"good", "handle_request", 4}, {"oob", "handle_bad", 1}};
  ServerMetrics m;
  ASSERT_NO_THROW(
      m = serve_requests(*program.program, 100, 5, {}, {}, serve));
  ASSERT_EQ(m.classes.size(), 2u);
  // Every "oob" request trips a Cash bound check; every "good" one passes.
  EXPECT_GT(m.classes[1].requests, 0u);
  EXPECT_EQ(m.classes[1].failed_requests, m.classes[1].requests);
  EXPECT_EQ(m.classes[0].failed_requests, 0u);
  EXPECT_EQ(m.failed_requests, m.classes[1].requests);
  EXPECT_FALSE(m.first_failure.empty());
  // A faulted child dirties its machine mid-handler; the snapshot pool must
  // rewind it bit-exactly, so serving the same mix without snapshots is
  // identical.
  ServeOptions replay = serve;
  replay.enable_snapshot = false;
  const ServerMetrics r =
      serve_requests(*program.program, 100, 5, {}, {}, replay);
  EXPECT_EQ(first_metrics_difference(m, r), "");
}

TEST(ServeLoop, QueueingModelIsDeterministicAcrossStrategiesAndJobs) {
  CompileResult program = compile_mode(passes::CheckMode::kNoCheck);
  ASSERT_TRUE(program.ok()) << program.error;
  ServeOptions serve;
  serve.sim_servers = 2;
  serve.mean_interarrival_cycles = 4000; // well under mean service time
  serve.churn_period = 10;
  const ServerMetrics base =
      serve_requests(*program.program, 120, 3, {1}, {}, serve);
  // Two servers fed faster than they drain: waits and a backlog must show.
  EXPECT_GT(base.queue_wait_cycles, 0u);
  EXPECT_GT(base.peak_queue_depth, 0u);
  EXPECT_EQ(base.rejected_requests, 0u);
  EXPECT_EQ(base.connects, 12u); // indices 0, 10, ..., 110
  // Latency = CPU + connect + wait, exactly.
  EXPECT_EQ(base.total_latency_cycles,
            base.total_cpu_cycles + base.connects * serve.connect_cycles +
                base.queue_wait_cycles);
  ServeOptions replay = serve;
  replay.enable_snapshot = false;
  for (int jobs : {1, 2, 8}) {
    const ServerMetrics snap =
        serve_requests(*program.program, 120, 3, {jobs}, {}, serve);
    const ServerMetrics reb =
        serve_requests(*program.program, 120, 3, {jobs}, {}, replay);
    EXPECT_EQ(first_metrics_difference(base, snap), "") << "jobs=" << jobs;
    EXPECT_EQ(first_metrics_difference(base, reb), "") << "jobs=" << jobs;
  }
}

TEST(ServeLoop, AdmissionControlRejectsWhenTheQueueIsFull) {
  CompileResult program = compile_mode(passes::CheckMode::kNoCheck);
  ASSERT_TRUE(program.ok()) << program.error;
  ServeOptions serve;
  serve.sim_servers = 1;
  serve.mean_interarrival_cycles = 1000; // heavy overload
  serve.max_queue_depth = 4;
  const ServerMetrics m =
      serve_requests(*program.program, 150, 3, {}, {}, serve);
  EXPECT_GT(m.rejected_requests, 0u);
  EXPECT_LT(m.rejected_requests, 150u);
  // The backlog never exceeds the admission limit.
  EXPECT_LE(m.peak_queue_depth, 4u);
  // Rejected requests never ran: per-class admitted counts absorb the gap.
  ASSERT_EQ(m.classes.size(), 1u);
  EXPECT_EQ(m.classes[0].requests + m.rejected_requests, 150u);
  // Unlimited queue admits everything but waits longer.
  ServeOptions open = serve;
  open.max_queue_depth = 0;
  const ServerMetrics all =
      serve_requests(*program.program, 150, 3, {}, {}, open);
  EXPECT_EQ(all.rejected_requests, 0u);
  EXPECT_GT(all.queue_wait_cycles, m.queue_wait_cycles);
  EXPECT_GE(all.peak_queue_depth, m.peak_queue_depth);
}

TEST(ServeLoop, SnapshotPoolAmortisesMachineBuilds) {
  CompileResult program = compile_mode(passes::CheckMode::kCash);
  ASSERT_TRUE(program.ok()) << program.error;
  // jobs=1: one worker chunk → one machine, one init replay, one capture,
  // and a restore before every request after the first.
  const ServerMetrics pooled =
      serve_requests(*program.program, 50, 1, {1});
  EXPECT_EQ(pooled.pool.machines_built, 1u);
  EXPECT_EQ(pooled.pool.init_replays, 1u);
  EXPECT_EQ(pooled.pool.captures, 1u);
  EXPECT_EQ(pooled.pool.restores, 49u);
  // Rebuild-and-replay pays the full build per request.
  ServeOptions replay;
  replay.enable_snapshot = false;
  const ServerMetrics rebuilt =
      serve_requests(*program.program, 50, 1, {1}, {}, replay);
  EXPECT_EQ(rebuilt.pool.machines_built, 50u);
  EXPECT_EQ(rebuilt.pool.init_replays, 50u);
  EXPECT_EQ(rebuilt.pool.captures, 0u);
  EXPECT_EQ(rebuilt.pool.restores, 0u);
  // PoolStats is the one host-side member: everything simulated is still
  // bit-identical between the two strategies.
  EXPECT_EQ(first_metrics_difference(pooled, rebuilt), "");
}

TEST(ServeLoop, KillSwitchForcesArmedServingOffTheSnapshotPath) {
  CompileResult program = compile_mode(passes::CheckMode::kCash);
  ASSERT_TRUE(program.ok()) << program.error;
  faultinject::FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back(
      {faultinject::FaultSite::kNetRequestTimeout, 0, 3, 0, 1});
  const ServerMetrics armed =
      serve_requests(*program.program, 30, 7, {1}, plan);
  EXPECT_GT(armed.pool.captures, 0u); // armed default = fork-from-snapshot
  ::setenv("CASH_NO_SNAPSHOT", "1", 1);
  const ServerMetrics killed =
      serve_requests(*program.program, 30, 7, {1}, plan);
  ::unsetenv("CASH_NO_SNAPSHOT");
  EXPECT_EQ(killed.pool.captures, 0u);
  EXPECT_EQ(killed.pool.restores, 0u);
  EXPECT_EQ(first_metrics_difference(armed, killed), "");
}

} // namespace
} // namespace cash::netsim
