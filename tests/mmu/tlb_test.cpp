// Tests of the software TLB's correctness contract: stale entries must
// never be served after a PageTable mutation (set_guard, unmap, map_page),
// permission-mismatch hits must re-walk to the architectural fault, and the
// segment-register fast path must keep hidden-part (descriptor cache)
// semantics — a descriptor-table rewrite stays invisible until reload.
#include <gtest/gtest.h>

#include "kernel/kernel_sim.hpp"
#include "mmu/mmu.hpp"

namespace cash::mmu {
namespace {

using paging::kPageShift;
using paging::kPageSize;
using x86seg::SegmentDescriptor;
using x86seg::SegReg;
using x86seg::Selector;

class TlbTest : public testing::Test {
 protected:
  TlbTest()
      : pid_(kernel_.create_process()),
        phys_(256),
        pages_(phys_),
        unit_(kernel_.gdt(), kernel_.ldt(pid_)),
        mmu_(unit_, pages_, phys_) {
    EXPECT_TRUE(
        unit_.load(SegReg::kDs, kernel::flat_user_data_selector()).ok());
  }

  kernel::KernelSim kernel_;
  kernel::Pid pid_;
  paging::PhysicalMemory phys_;
  paging::PageTable pages_;
  x86seg::SegmentationUnit unit_;
  Mmu mmu_;
};

TEST_F(TlbTest, RepeatedAccessHitsTlb) {
  ASSERT_TRUE(mmu_.write32(SegReg::kDs, 0x5000, 0xABCD).ok());
  const std::uint64_t hits_before = pages_.tlb().stats().hits;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(mmu_.read32(SegReg::kDs, 0x5000).value(), 0xABCDU);
  }
  EXPECT_GE(pages_.tlb().stats().hits, hits_before + 10);
}

TEST_F(TlbTest, GuardSetAfterCachingStillFaults) {
  // Cache the page via a normal access, then turn it into an Electric-Fence
  // guard page. The next access must take the full walk and #PF — a stale
  // TLB entry here would silently swallow the overflow detection.
  ASSERT_TRUE(mmu_.write32(SegReg::kDs, 0x8000, 1).ok());
  ASSERT_TRUE(mmu_.read32(SegReg::kDs, 0x8000).ok());
  const std::uint64_t inv_before = pages_.tlb().stats().invalidations;
  pages_.set_guard(0x8000 >> kPageShift, true);
  EXPECT_EQ(pages_.tlb().stats().invalidations, inv_before + 1);
  const Result<std::uint32_t> r = mmu_.read32(SegReg::kDs, 0x8000);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().kind, FaultKind::kPageFault);
  EXPECT_NE(r.fault().detail.find("guard-page"), std::string::npos);
}

TEST_F(TlbTest, UnmapInvalidatesCachedTranslation) {
  ASSERT_TRUE(mmu_.write32(SegReg::kDs, 0x9000, 0xFEEDFACE).ok());
  ASSERT_EQ(mmu_.read32(SegReg::kDs, 0x9000).value(), 0xFEEDFACEU);
  pages_.unmap(0x9000 >> kPageShift);
  // Without the MMU's demand mapping, the walk itself must fault — a stale
  // TLB entry would still have returned the old frame.
  EXPECT_FALSE(pages_.translate(0x9000, 4, false, true).ok());
  // Through the MMU, demand paging maps a *fresh zeroed* frame: the old
  // value must not resurface via the TLB.
  EXPECT_EQ(mmu_.read32(SegReg::kDs, 0x9000).value(), 0U);
}

TEST_F(TlbTest, WriteThroughCachedReadOnlyEntryFaults) {
  const std::uint32_t page = 0x50;
  pages_.map_page(page, /*writable=*/false);
  ASSERT_TRUE(mmu_.read32(SegReg::kDs, page * kPageSize).ok()); // caches
  const Status s = mmu_.write32(SegReg::kDs, page * kPageSize, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.fault().kind, FaultKind::kPageFault);
  EXPECT_NE(s.fault().detail.find("read-only"), std::string::npos);
}

TEST_F(TlbTest, SupervisorEntryCachedByKernelAccessRejectsUserAccess) {
  const std::uint32_t page = 0x60;
  pages_.map_page(page, /*writable=*/true, /*user=*/false);
  // Kernel-mode linear access succeeds and fills the TLB with user=0.
  ASSERT_TRUE(mmu_.read32_linear(page * kPageSize).ok());
  // The user-mode probe must treat that entry as a miss and re-walk to the
  // architectural fault.
  const Result<std::uint32_t> r = mmu_.read32(SegReg::kDs, page * kPageSize);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().kind, FaultKind::kPageFault);
  EXPECT_NE(r.fault().detail.find("supervisor"), std::string::npos);
}

TEST_F(TlbTest, LdtRewriteInvisibleUntilSegmentReload) {
  // The segment fast-path word is derived at load() time, with exactly the
  // lifetime of the hidden part: a cash_modify_ldt() rewrite must stay
  // invisible until the register is reloaded, then take effect.
  ASSERT_TRUE(kernel_.set_ldt_callgate(pid_).ok());
  ASSERT_TRUE(kernel_
                  .cash_modify_ldt(pid_, 2,
                                   SegmentDescriptor::byte_granular_data(
                                       0x20000, 101))
                  .ok());
  const Selector sel = Selector::make(2, true, 3);
  ASSERT_TRUE(unit_.load(SegReg::kGs, sel).ok());
  ASSERT_TRUE(mmu_.write32(SegReg::kGs, 80, 7).ok());

  // Shrink the segment to 51 bytes behind the loaded register's back.
  ASSERT_TRUE(kernel_
                  .cash_modify_ldt(pid_, 2,
                                   SegmentDescriptor::byte_granular_data(
                                       0x20000, 51))
                  .ok());
  // Stale hidden part: offset 80 still passes.
  EXPECT_TRUE(mmu_.read32(SegReg::kGs, 80).ok());
  // Reload makes the rewrite architectural: offset 80 now #GPs, 40 passes.
  ASSERT_TRUE(unit_.load(SegReg::kGs, sel).ok());
  const Result<std::uint32_t> r = mmu_.read32(SegReg::kGs, 80);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().kind, FaultKind::kGeneralProtection);
  EXPECT_TRUE(mmu_.read32(SegReg::kGs, 40).ok());
}

TEST_F(TlbTest, DisabledTlbIsCorrectAndCountsNothing) {
  pages_.tlb().set_enabled(false);
  const paging::TlbStats before = pages_.tlb().stats();
  ASSERT_TRUE(mmu_.write32(SegReg::kDs, 0x7000, 0x1234).ok());
  ASSERT_EQ(mmu_.read32(SegReg::kDs, 0x7000).value(), 0x1234U);
  EXPECT_EQ(pages_.tlb().stats().hits, before.hits);
  EXPECT_EQ(pages_.tlb().stats().misses, before.misses);
}

TEST_F(TlbTest, FlushDropsAllEntriesAndCounts) {
  ASSERT_TRUE(mmu_.write32(SegReg::kDs, 0xA000, 1).ok());
  const paging::TlbStats before = pages_.tlb().stats();
  pages_.tlb().flush();
  EXPECT_EQ(pages_.tlb().stats().flushes, before.flushes + 1);
  // Next access misses (refill), then hits again.
  ASSERT_TRUE(mmu_.read32(SegReg::kDs, 0xA000).ok());
  EXPECT_EQ(pages_.tlb().stats().misses, before.misses + 1);
}

} // namespace
} // namespace cash::mmu
