// Tests of the composed MMU (Figure 1's full pipeline): segment-relative
// accesses with demand paging, page-crossing words, and fault propagation
// from both stages.
#include <gtest/gtest.h>

#include "kernel/kernel_sim.hpp"
#include "mmu/mmu.hpp"

namespace cash::mmu {
namespace {

using x86seg::Access;
using x86seg::SegReg;
using x86seg::SegmentDescriptor;
using x86seg::Selector;

class MmuTest : public testing::Test {
 protected:
  MmuTest()
      : pid_(kernel_.create_process()),
        phys_(256),
        pages_(phys_),
        unit_(kernel_.gdt(), kernel_.ldt(pid_)),
        mmu_(unit_, pages_, phys_) {
    EXPECT_TRUE(unit_.load(SegReg::kDs, kernel::flat_user_data_selector()).ok());
    EXPECT_TRUE(kernel_.ldt(pid_)
                    .write(1, SegmentDescriptor::byte_granular_data(
                                  0x20000, 64))
                    .ok());
    EXPECT_TRUE(unit_.load(SegReg::kGs, Selector::make(1, true, 3)).ok());
  }

  kernel::KernelSim kernel_;
  kernel::Pid pid_;
  paging::PhysicalMemory phys_;
  paging::PageTable pages_;
  x86seg::SegmentationUnit unit_;
  Mmu mmu_;
};

TEST_F(MmuTest, FlatWriteReadRoundTrip) {
  ASSERT_TRUE(mmu_.write32(SegReg::kDs, 0x12345, 0xABCD1234).ok());
  const Result<std::uint32_t> r = mmu_.read32(SegReg::kDs, 0x12345);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0xABCD1234U);
}

TEST_F(MmuTest, SegmentRelativeAccessSeesSameMemory) {
  // GS covers [0x20000, 0x20040): GS:8 aliases DS:0x20008.
  ASSERT_TRUE(mmu_.write32(SegReg::kGs, 8, 0x55AA55AA).ok());
  const Result<std::uint32_t> via_ds = mmu_.read32(SegReg::kDs, 0x20008);
  ASSERT_TRUE(via_ds.ok());
  EXPECT_EQ(via_ds.value(), 0x55AA55AAU);
}

TEST_F(MmuTest, SegmentLimitViolationPropagates) {
  const Status s = mmu_.write32(SegReg::kGs, 64, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.fault().kind, FaultKind::kGeneralProtection);
}

TEST_F(MmuTest, ByteAccess) {
  ASSERT_TRUE(mmu_.write8(SegReg::kGs, 63, 0x7F).ok());
  const Result<std::uint8_t> r = mmu_.read8(SegReg::kGs, 63);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0x7F);
  EXPECT_FALSE(mmu_.write8(SegReg::kGs, 64, 1).ok());
}

TEST_F(MmuTest, PageCrossingWordRoundTrips) {
  // Word at 0x20FFE straddles 0x21000: the frames are not contiguous, so
  // the split path must reassemble the word correctly.
  const std::uint32_t addr = 0x20FFE;
  ASSERT_TRUE(mmu_.write32(SegReg::kDs, addr, 0x12345678).ok());
  const Result<std::uint32_t> r = mmu_.read32(SegReg::kDs, addr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0x12345678U);
  // Byte-level view confirms little-endian layout across the boundary.
  EXPECT_EQ(mmu_.read8(SegReg::kDs, addr).value(), 0x78);
  EXPECT_EQ(mmu_.read8(SegReg::kDs, addr + 3).value(), 0x12);
}

TEST_F(MmuTest, LinearAccessBypassesSegmentation) {
  ASSERT_TRUE(mmu_.write32_linear(0x30000, 42).ok());
  const Result<std::uint32_t> r = mmu_.read32_linear(0x30000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42U);
}

TEST_F(MmuTest, UnloadedSegmentRegisterFaults) {
  EXPECT_FALSE(mmu_.read32(SegReg::kFs, 0).ok());
}

TEST_F(MmuTest, DemandPagingBacksLegalAccesses) {
  const std::uint32_t before = pages_.mapped_pages();
  ASSERT_TRUE(mmu_.write32(SegReg::kDs, 0x90000, 7).ok());
  EXPECT_GT(pages_.mapped_pages(), before);
}

} // namespace
} // namespace cash::mmu
