// Parameterised size sweeps: each micro kernel validated against its native
// reference across a range of sizes and modes — the property backing the
// Table 3 scaling study.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/cash.hpp"
#include "workloads/reference.hpp"
#include "workloads/workloads.hpp"

namespace cash {
namespace {

using passes::CheckMode;

double run_and_parse(const std::string& source, CheckMode mode) {
  CompileOptions options;
  options.lower.mode = mode;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  vm::RunResult run = compiled.program->run();
  EXPECT_TRUE(run.ok) << (run.fault ? run.fault->detail : run.error);
  return std::strtod(run.output.c_str(), nullptr);
}

void expect_close(double expected, double actual, double rel) {
  EXPECT_NEAR(expected, actual,
              rel * std::max(1.0, std::max(std::abs(expected),
                                           std::abs(actual))));
}

struct SweepCase {
  int size;
  CheckMode mode;
};

std::string case_name(const testing::TestParamInfo<SweepCase>& info) {
  return std::string(to_string(info.param.mode)) + "_" +
         std::to_string(info.param.size);
}

class MatmulSweep : public testing::TestWithParam<SweepCase> {};
TEST_P(MatmulSweep, MatchesReference) {
  expect_close(workloads::reference::matmul(GetParam().size),
               run_and_parse(workloads::matmul_source(GetParam().size),
                             GetParam().mode),
               1e-4);
}
INSTANTIATE_TEST_SUITE_P(
    Sizes, MatmulSweep,
    testing::Values(SweepCase{8, CheckMode::kNoCheck},
                    SweepCase{8, CheckMode::kCash},
                    SweepCase{17, CheckMode::kCash},  // non-power-of-two
                    SweepCase{17, CheckMode::kBcc},
                    SweepCase{32, CheckMode::kCash},
                    SweepCase{32, CheckMode::kShadow},
                    SweepCase{48, CheckMode::kNoCheck},
                    SweepCase{48, CheckMode::kCash}),
    case_name);

class GaussSweep : public testing::TestWithParam<SweepCase> {};
TEST_P(GaussSweep, MatchesReference) {
  expect_close(workloads::reference::gauss(GetParam().size),
               run_and_parse(workloads::gauss_source(GetParam().size),
                             GetParam().mode),
               1e-4);
}
INSTANTIATE_TEST_SUITE_P(
    Sizes, GaussSweep,
    testing::Values(SweepCase{5, CheckMode::kCash},
                    SweepCase{12, CheckMode::kCash},
                    SweepCase{12, CheckMode::kBcc},
                    SweepCase{33, CheckMode::kCash},
                    SweepCase{33, CheckMode::kEfence}),
    case_name);

class FftSweep : public testing::TestWithParam<SweepCase> {};
TEST_P(FftSweep, MatchesReference) {
  expect_close(workloads::reference::fft2d(GetParam().size),
               run_and_parse(workloads::fft2d_source(GetParam().size),
                             GetParam().mode),
               1e-3);
}
INSTANTIATE_TEST_SUITE_P(Sizes, FftSweep,
                         testing::Values(SweepCase{4, CheckMode::kCash},
                                         SweepCase{8, CheckMode::kCash},
                                         SweepCase{8, CheckMode::kBcc},
                                         SweepCase{32, CheckMode::kCash}),
                         case_name);

class EdgeSweep : public testing::TestWithParam<SweepCase> {};
TEST_P(EdgeSweep, MatchesReference) {
  const int n = GetParam().size;
  EXPECT_EQ(static_cast<double>(workloads::reference::edge(n, n * 3 / 4)),
            run_and_parse(workloads::edge_source(n, n * 3 / 4),
                          GetParam().mode));
}
INSTANTIATE_TEST_SUITE_P(Sizes, EdgeSweep,
                         testing::Values(SweepCase{16, CheckMode::kCash},
                                         SweepCase{40, CheckMode::kCash},
                                         SweepCase{40, CheckMode::kBcc},
                                         SweepCase{64, CheckMode::kNoCheck}),
                         case_name);

class SvdSweep : public testing::TestWithParam<SweepCase> {};
TEST_P(SvdSweep, MatchesReference) {
  const int m = GetParam().size;
  const int n = std::max(2, m / 4);
  expect_close(workloads::reference::svd(m, n, 12),
               run_and_parse(workloads::svd_source(m, n, 12),
                             GetParam().mode),
               1e-3);
}
INSTANTIATE_TEST_SUITE_P(Sizes, SvdSweep,
                         testing::Values(SweepCase{16, CheckMode::kCash},
                                         SweepCase{40, CheckMode::kCash},
                                         SweepCase{40, CheckMode::kBcc},
                                         SweepCase{64, CheckMode::kCash}),
                         case_name);

class VolrenSweep : public testing::TestWithParam<SweepCase> {};
TEST_P(VolrenSweep, MatchesReference) {
  const int n = GetParam().size;
  expect_close(workloads::reference::volren(n, n * 2),
               run_and_parse(workloads::volren_source(n, n * 2),
                             GetParam().mode),
               1e-4);
}
INSTANTIATE_TEST_SUITE_P(Sizes, VolrenSweep,
                         testing::Values(SweepCase{8, CheckMode::kCash},
                                         SweepCase{12, CheckMode::kBcc},
                                         SweepCase{24, CheckMode::kCash}),
                         case_name);

// The Table 3 scaling property itself: Cash's relative overhead shrinks as
// the matrix grows.
TEST(ScalingProperty, CashRelativeOverheadDecreasesWithSize) {
  double previous = 1e9;
  for (int n : {16, 32, 64}) {
    CompileOptions gcc_opt;
    gcc_opt.lower.mode = CheckMode::kNoCheck;
    CompileOptions cash_opt;
    cash_opt.lower.mode = CheckMode::kCash;
    auto gcc = compile(workloads::matmul_source(n), gcc_opt);
    auto cash_p = compile(workloads::matmul_source(n), cash_opt);
    ASSERT_TRUE(gcc.ok() && cash_p.ok());
    const auto g = gcc.program->run();
    const auto c = cash_p.program->run();
    ASSERT_TRUE(g.ok && c.ok);
    const double overhead =
        (static_cast<double>(c.cycles) - static_cast<double>(g.cycles)) /
        static_cast<double>(g.cycles);
    EXPECT_LT(overhead, previous) << n;
    previous = overhead;
  }
}

} // namespace
} // namespace cash
