// Validates every micro kernel against its native C++ reference, in each
// checking mode — an end-to-end correctness check of the whole pipeline.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/cash.hpp"
#include "workloads/reference.hpp"
#include "workloads/workloads.hpp"

namespace cash {
namespace {

using passes::CheckMode;

double run_and_parse(const std::string& source, CheckMode mode) {
  CompileOptions options;
  options.lower.mode = mode;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  if (!compiled.ok()) {
    return 0.0;
  }
  vm::RunResult run = compiled.program->run();
  EXPECT_TRUE(run.ok) << (run.fault ? run.fault->detail : run.error);
  return std::strtod(run.output.c_str(), nullptr);
}

void expect_near_rel(double expected, double actual, double rel) {
  const double tolerance =
      rel * std::max(1.0, std::max(std::abs(expected), std::abs(actual)));
  EXPECT_NEAR(expected, actual, tolerance);
}

// Small instances so every mode runs fast; the benches use paper sizes.
TEST(MicroKernels, MatmulMatchesReferenceAllModes) {
  const double expected = workloads::reference::matmul(24);
  for (CheckMode mode : {CheckMode::kNoCheck, CheckMode::kBcc,
                         CheckMode::kCash, CheckMode::kBoundInsn,
                         CheckMode::kEfence}) {
    expect_near_rel(expected,
                    run_and_parse(workloads::matmul_source(24), mode), 1e-4);
  }
}

TEST(MicroKernels, GaussMatchesReferenceAllModes) {
  const double expected = workloads::reference::gauss(24);
  for (CheckMode mode :
       {CheckMode::kNoCheck, CheckMode::kBcc, CheckMode::kCash}) {
    expect_near_rel(expected,
                    run_and_parse(workloads::gauss_source(24), mode), 1e-4);
  }
}

TEST(MicroKernels, Fft2dMatchesReferenceAllModes) {
  const double expected = workloads::reference::fft2d(16);
  for (CheckMode mode :
       {CheckMode::kNoCheck, CheckMode::kBcc, CheckMode::kCash}) {
    expect_near_rel(expected,
                    run_and_parse(workloads::fft2d_source(16), mode), 1e-3);
  }
}

TEST(MicroKernels, EdgeMatchesReferenceAllModes) {
  const double expected =
      static_cast<double>(workloads::reference::edge(64, 48));
  for (CheckMode mode :
       {CheckMode::kNoCheck, CheckMode::kBcc, CheckMode::kCash}) {
    EXPECT_EQ(expected, run_and_parse(workloads::edge_source(64, 48), mode));
  }
}

TEST(MicroKernels, VolrenMatchesReferenceAllModes) {
  const double expected = workloads::reference::volren(16, 32);
  for (CheckMode mode :
       {CheckMode::kNoCheck, CheckMode::kBcc, CheckMode::kCash}) {
    expect_near_rel(expected,
                    run_and_parse(workloads::volren_source(16, 32), mode),
                    1e-4);
  }
}

TEST(MicroKernels, SvdMatchesReferenceAllModes) {
  const double expected = workloads::reference::svd(37, 12, 15);
  for (CheckMode mode :
       {CheckMode::kNoCheck, CheckMode::kBcc, CheckMode::kCash}) {
    expect_near_rel(expected,
                    run_and_parse(workloads::svd_source(37, 12, 15), mode),
                    1e-3);
  }
}

// Paper-size kernels compile, and the Cash pass finds only hardware checks
// with 4 segment registers (the Table 1 configuration: "all software bound
// checks are eliminated in each of the six test programs").
TEST(MicroKernels, PaperSizesCompileAndEliminateAllSwChecksWith4Regs) {
  for (const workloads::Workload& w : workloads::micro_suite()) {
    CompileOptions options;
    options.lower.mode = CheckMode::kCash;
    options.lower.num_seg_regs = 4;
    CompileResult compiled = compile(w.source, options);
    ASSERT_TRUE(compiled.ok()) << w.name << ": " << compiled.error;
    EXPECT_EQ(compiled.program->lower_stats().sw_checks, 0U) << w.name;
    EXPECT_GT(compiled.program->lower_stats().hw_checks, 0U) << w.name;
  }
}

TEST(MicroKernels, TemplateExpansion) {
  EXPECT_EQ(workloads::expand_template("${A}+${B}=${A}${B}",
                                       {{"A", "1"}, {"B", "2"}}),
            "1+2=12");
}

} // namespace
} // namespace cash
