// Cross-mode agreement tests for the macro and network suites: every
// checking mode must compute the same result as the unchecked baseline
// (checks may abort a buggy program but must never change a correct one).
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "workloads/workloads.hpp"

namespace cash {
namespace {

using passes::CheckMode;

vm::RunResult run_mode(const workloads::Workload& w, CheckMode mode,
                       int seg_regs = 3, std::uint32_t seed = 0x1234) {
  CompileOptions options;
  options.lower.mode = mode;
  options.lower.num_seg_regs = seg_regs;
  options.machine.rng_seed = seed;
  CompileResult compiled = compile(w.source, options);
  EXPECT_TRUE(compiled.ok()) << w.name << ": " << compiled.error;
  if (!compiled.ok()) {
    return {};
  }
  vm::RunResult run = compiled.program->run();
  EXPECT_TRUE(run.ok) << w.name << " [" << to_string(mode) << "]: "
                      << (run.fault ? run.fault->detail : run.error);
  return run;
}

class MacroSuite : public testing::TestWithParam<int> {};

TEST_P(MacroSuite, AllModesAgreeWithBaseline) {
  const workloads::Workload& w =
      workloads::macro_suite()[static_cast<std::size_t>(GetParam())];
  const vm::RunResult baseline = run_mode(w, CheckMode::kNoCheck);
  for (CheckMode mode : {CheckMode::kBcc, CheckMode::kCash,
                         CheckMode::kBoundInsn, CheckMode::kEfence}) {
    const vm::RunResult run = run_mode(w, mode);
    EXPECT_EQ(baseline.output, run.output)
        << w.name << " diverges under " << to_string(mode);
  }
}

TEST_P(MacroSuite, CashOverheadIsBelowBcc) {
  const workloads::Workload& w =
      workloads::macro_suite()[static_cast<std::size_t>(GetParam())];
  const vm::RunResult gcc = run_mode(w, CheckMode::kNoCheck);
  const vm::RunResult cash = run_mode(w, CheckMode::kCash);
  const vm::RunResult bcc = run_mode(w, CheckMode::kBcc);
  EXPECT_LT(cash.cycles, bcc.cycles) << w.name;
  EXPECT_LE(gcc.cycles, cash.cycles) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllMacroApps, MacroSuite, testing::Range(0, 6),
    [](const testing::TestParamInfo<int>& info) {
      std::string name =
          workloads::macro_suite()[static_cast<std::size_t>(info.param)].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

class NetworkSuite : public testing::TestWithParam<int> {};

TEST_P(NetworkSuite, AllModesAgreeAcrossRequests) {
  const workloads::Workload& w =
      workloads::network_suite()[static_cast<std::size_t>(GetParam())];
  for (std::uint32_t seed : {1U, 7U, 42U, 1000U}) {
    const vm::RunResult baseline =
        run_mode(w, CheckMode::kNoCheck, 3, seed);
    for (CheckMode mode : {CheckMode::kBcc, CheckMode::kCash}) {
      const vm::RunResult run = run_mode(w, mode, 3, seed);
      EXPECT_EQ(baseline.output, run.output)
          << w.name << " seed " << seed << " diverges under "
          << to_string(mode);
    }
  }
}

TEST_P(NetworkSuite, RequestsVaryWithSeed) {
  const workloads::Workload& w =
      workloads::network_suite()[static_cast<std::size_t>(GetParam())];
  const vm::RunResult a = run_mode(w, CheckMode::kNoCheck, 3, 1);
  const vm::RunResult b = run_mode(w, CheckMode::kNoCheck, 3, 2);
  // Different seeds must generally produce different requests/responses.
  EXPECT_NE(a.output, b.output) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworkApps, NetworkSuite, testing::Range(0, 6),
    [](const testing::TestParamInfo<int>& info) {
      std::string name = workloads::network_suite()
                             [static_cast<std::size_t>(info.param)]
                                 .name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(MacroSuiteStats, QuatAndRayLabHaveSpilledLoops) {
  // The Quat iteration loop touches 5 arrays and RayLab's hit loop 5 —
  // with 3 segment registers both must spill (the paper's Table 4 story).
  for (const char* name : {"Quat", "RayLab"}) {
    const auto& suite = workloads::macro_suite();
    const auto it =
        std::find_if(suite.begin(), suite.end(),
                     [&](const auto& w) { return w.name == name; });
    ASSERT_NE(it, suite.end());
    CompileOptions options;
    options.lower.mode = CheckMode::kCash;
    CompileResult compiled = compile(it->source, options);
    ASSERT_TRUE(compiled.ok()) << compiled.error;
    EXPECT_GT(compiled.program->lower_stats().sw_checks, 0U) << name;
    EXPECT_GT(compiled.program->program_stats(3).loops_over_budget, 0U)
        << name;
  }
}

TEST(NetworkSuiteStats, SendmailHasMostSpilledLoops) {
  const auto& suite = workloads::network_suite();
  std::uint64_t sendmail_spills = 0;
  std::uint64_t max_other = 0;
  for (const auto& w : suite) {
    CompileOptions options;
    options.lower.mode = CheckMode::kCash;
    CompileResult compiled = compile(w.source, options);
    ASSERT_TRUE(compiled.ok()) << w.name << ": " << compiled.error;
    const std::uint64_t spills =
        compiled.program->program_stats(3).loops_over_budget;
    if (w.name == "Sendmail") {
      sendmail_spills = spills;
    } else {
      max_other = std::max(max_other, spills);
    }
  }
  EXPECT_GE(sendmail_spills, max_other)
      << "Sendmail should spill at least as much as any other network app "
         "(Table 7: 11% vs <= 3.5%)";
  EXPECT_GT(sendmail_spills, 0U);
}

} // namespace
} // namespace cash
