// Whole-program check elision (passes/elide.cpp): per-pattern tests
// asserting via the IR printer that exactly the expected checks remain
// after lowering, negative cases proving the pass leaves unsafe patterns
// alone, a seeded-violation sweep proving elided compilations catch every
// bound violation the baseline catches, and the $CASH_NO_ELIDE bit-identity
// gate through the full-RunResult comparator.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/cash.hpp"
#include "ir/printer.hpp"
#include "../vm/run_result_compare.hpp"

namespace cash {
namespace {

using passes::CheckMode;

int count_occurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// One function's section of the printed module, so per-pattern assertions
// are not polluted by checks elsewhere (e.g. main's set-up loops).
std::string function_text(const std::string& module_text,
                          const std::string& name) {
  const std::string tag = "func " + name + "(";
  const std::size_t begin = module_text.find(tag);
  if (begin == std::string::npos) {
    return {};
  }
  const std::size_t end = module_text.find("\nfunc ", begin);
  return end == std::string::npos ? module_text.substr(begin)
                                  : module_text.substr(begin, end - begin);
}

struct Compiled {
  std::string text; // lowered module, printer form
  passes::ElideStats stats;
  std::unique_ptr<CompiledProgram> program;
};

Compiled compile_elided(const std::string& source,
                        CheckMode mode = CheckMode::kBcc,
                        bool optimize = true) {
  CompileOptions options;
  options.lower.mode = mode;
  options.lower.elide_checks = true;
  options.optimize = optimize;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  Compiled out;
  if (compiled.ok()) {
    out.text = ir::to_text(compiled.program->module());
    out.stats = compiled.program->elide_stats();
    out.program = std::move(compiled.program);
  }
  return out;
}

// --- phase (a): accesses proven in-bounds ----------------------------------

TEST(ElideDelete, ConstantRangeLoopAccessesAreDeleted) {
  // Constant trip count over a constant-size array: every access is provably
  // inside [0, 4n), so lowering emits no instrumentation at all.
  const Compiled c = compile_elided(R"(
    int a[16];
    int main() {
      int i;
      int s;
      s = 0;
      for (i = 0; i < 16; i = i + 1) {
        s = s + a[i];
      }
      print_int(s);
      return 0;
    }
  )");
  EXPECT_EQ(count_occurrences(c.text, "boundcheck."), 0) << c.text;
  EXPECT_GE(c.stats.checks_deleted, 1u);
  EXPECT_EQ(c.stats.checks_hoisted, 0u);
}

// --- phase (a'): dominated duplicates --------------------------------------

TEST(ElideDelete, DominatedDuplicateCheckIsDeleted) {
  // The same fixed element checked twice with no call in between: the
  // second check is covered by the first. (The offset is out of range so
  // phase (a)'s in-bounds proof cannot fire first; at run time the first
  // check faults before the second access executes, which is exactly why
  // deleting the dominated duplicate is sound.)
  const Compiled c = compile_elided(R"(
    int a[8];
    int main() {
      int x;
      x = a[9];
      a[9] = x + 1;
      return 0;
    }
  )");
  EXPECT_EQ(count_occurrences(c.text, "boundcheck.sw"), 1) << c.text;
  EXPECT_EQ(count_occurrences(c.text, "!elided"), 1) << c.text;
  EXPECT_EQ(c.stats.checks_deleted, 1u);
}

TEST(ElideDelete, CallBetweenChecksBlocksTheDuplicate) {
  // Negative: a call between the two accesses may mutate bounds state, so
  // the dominated-duplicate rule must not fire across it.
  const Compiled c = compile_elided(R"(
    int a[8];
    int poke() {
      return 1;
    }
    int main() {
      int x;
      x = a[9];
      x = x + poke();
      a[9] = x;
      return 0;
    }
  )",
                                    CheckMode::kBcc, false);
  EXPECT_EQ(count_occurrences(c.text, "boundcheck.sw"), 2) << c.text;
  EXPECT_EQ(c.stats.checks_deleted, 0u);
}

// --- phase (b): monotone-loop hoisting -------------------------------------

TEST(ElideHoist, UpwardCountedLoopHoistsToOneIntervalCheck) {
  // Runtime bound, so the in-bounds proof cannot fire; the per-iteration
  // check collapses to one preheader interval check (a boundcheck with two
  // operands) and the body access is marked !elided.
  const Compiled c = compile_elided(R"(
    int a[16];
    int sum(int n) {
      int i;
      int s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        s = s + a[i];
      }
      return s;
    }
    int main() {
      int i;
      for (i = 0; i < 16; i = i + 1) {
        a[i] = i;
      }
      print_int(sum(16));
      return 0;
    }
  )");
  const std::string sum = function_text(c.text, "sum");
  EXPECT_EQ(c.stats.checks_hoisted, 1u) << c.text;
  EXPECT_EQ(c.stats.hoist_checks_inserted, 1u);
  EXPECT_EQ(count_occurrences(sum, "boundcheck.sw"), 1) << sum;
  EXPECT_EQ(count_occurrences(sum, "!elided"), 1) << sum;
  // main's constant-range set-up loop is phase (a) fodder.
  EXPECT_EQ(count_occurrences(function_text(c.text, "main"), "boundcheck."),
            0);
  ASSERT_TRUE(c.program != nullptr);
  const vm::RunResult run = c.program->run();
  EXPECT_TRUE(run.ok) << (run.fault ? run.fault->detail : run.error);
  EXPECT_EQ(run.output, "120\n");
}

TEST(ElideHoist, DownwardCountedLoopHoistsToOneIntervalCheck) {
  const Compiled c = compile_elided(R"(
    int a[16];
    int sumdown(int n) {
      int i;
      int s;
      s = 0;
      for (i = n - 1; i >= 0; i = i - 1) {
        s = s + a[i];
      }
      return s;
    }
    int main() {
      int i;
      for (i = 0; i < 16; i = i + 1) {
        a[i] = i;
      }
      print_int(sumdown(16));
      return 0;
    }
  )");
  const std::string sumdown = function_text(c.text, "sumdown");
  EXPECT_EQ(c.stats.checks_hoisted, 1u) << c.text;
  EXPECT_EQ(c.stats.hoist_checks_inserted, 1u);
  EXPECT_EQ(count_occurrences(sumdown, "boundcheck.sw"), 1) << sumdown;
  ASSERT_TRUE(c.program != nullptr);
  const vm::RunResult run = c.program->run();
  EXPECT_TRUE(run.ok) << (run.fault ? run.fault->detail : run.error);
  EXPECT_EQ(run.output, "120\n");
}

TEST(ElideHoist, EarlyExitLoopIsNotHoisted) {
  // Negative: the loop can return before reaching the extremal index, so a
  // preheader check of the far end could fault on a run the baseline
  // completes. The per-iteration check must stay.
  const Compiled c = compile_elided(R"(
    int find(int *p, int n) {
      int i;
      for (i = 0; i < n; i = i + 1) {
        if (p[i] == 7) {
          return i;
        }
      }
      return 0 - 1;
    }
    int b[16];
    int main() {
      b[5] = 7;
      print_int(find(b, 16));
      return 0;
    }
  )");
  EXPECT_EQ(c.stats.checks_hoisted, 0u) << c.text;
  EXPECT_GE(count_occurrences(c.text, "boundcheck.sw"), 1) << c.text;
}

TEST(ElideHoist, NonAffineIndexIsNotTouched) {
  // Negative: i*i is not an affine function of the induction variable, so
  // neither the in-bounds proof nor hoisting may fire.
  const Compiled c = compile_elided(R"(
    int a[128];
    int squares(int n) {
      int i;
      int s;
      s = 0;
      for (i = 0; i < n; i = i + 1) {
        s = s + a[i * i];
      }
      return s;
    }
    int main() {
      print_int(squares(11));
      return 0;
    }
  )");
  EXPECT_EQ(c.stats.checks_removed(), 0u) << c.text;
  EXPECT_GE(count_occurrences(c.text, "boundcheck.sw"), 1) << c.text;
}

// --- phase (c): block widening ---------------------------------------------

TEST(ElideWiden, ConsecutiveAccessesMergeIntoOneIntervalCheck) {
  // p[j], p[j+1], p[j+2] in one block against a pointer parameter: no
  // static extent, but the three checks widen into a single interval
  // check spanning [p+4j, p+4j+8].
  const Compiled c = compile_elided(R"(
    int smooth(int *p, int j) {
      return p[j] + p[j + 1] + p[j + 2];
    }
    int b[16];
    int main() {
      int i;
      for (i = 0; i < 16; i = i + 1) {
        b[i] = i;
      }
      print_int(smooth(b, 4));
      return 0;
    }
  )");
  const std::string smooth = function_text(c.text, "smooth");
  EXPECT_EQ(c.stats.checks_widened, 3u) << c.text;
  EXPECT_EQ(c.stats.widen_checks_inserted, 1u);
  EXPECT_EQ(count_occurrences(smooth, "boundcheck.sw"), 1) << smooth;
  EXPECT_EQ(count_occurrences(smooth, "!elided"), 3) << smooth;
  ASSERT_TRUE(c.program != nullptr);
  const vm::RunResult run = c.program->run();
  EXPECT_TRUE(run.ok) << (run.fault ? run.fault->detail : run.error);
  EXPECT_EQ(run.output, "15\n");
}

// --- fault identity: elided runs catch every seeded violation --------------

struct Violation {
  const char* name;
  const char* source;
};

const Violation kViolations[] = {
    {"loop_overrun_up", R"(
      int a[100];
      int walk(int *p, int n) {
        int i;
        int s;
        s = 0;
        for (i = 0; i < n; i = i + 1) {
          s = s + p[i];
        }
        return s;
      }
      int main() {
        print_int(walk(a, 0));
        print_int(walk(a, 101));
        return 0;
      }
    )"},
    {"loop_overrun_down", R"(
      int a[100];
      int walkdown(int *p, int n) {
        int i;
        int s;
        s = 0;
        for (i = n; i >= 0; i = i - 1) {
          s = s + p[i];
        }
        return s;
      }
      int main() {
        print_int(walkdown(a, 100));
        return 0;
      }
    )"},
    {"direct_oob_store", R"(
      int a[8];
      int main() {
        int x;
        x = a[9];
        a[9] = x;
        return 0;
      }
    )"},
    {"widened_group_oob", R"(
      int smooth(int *p, int j) {
        return p[j] + p[j + 1] + p[j + 2];
      }
      int b[16];
      int main() {
        print_int(smooth(b, 14));
        return 0;
      }
    )"},
};

class ElideFaultIdentity : public testing::TestWithParam<int> {};

TEST_P(ElideFaultIdentity, ElidedRunCatchesEverySeededViolation) {
  const Violation& v = kViolations[GetParam()];
  for (CheckMode mode : {CheckMode::kBcc, CheckMode::kCash,
                         CheckMode::kBoundInsn, CheckMode::kShadow}) {
    vm::RunResult base;
    vm::RunResult elided;
    for (bool elide : {false, true}) {
      CompileOptions options;
      options.lower.mode = mode;
      options.lower.elide_checks = elide;
      CompileResult compiled = compile(v.source, options);
      ASSERT_TRUE(compiled.ok())
          << v.name << " mode " << to_string(mode) << ": " << compiled.error;
      (elide ? elided : base) = compiled.program->run();
    }
    // The hoisted/widened interval check may fire earlier (and, under
    // cash, as #BR instead of #GP on a spilled array), so the gate is
    // bound_violation() plus output-so-far identity — not fault equality.
    // Cash by design leaves out-of-loop references unchecked, so its
    // baseline may miss a straight-line violation; the invariant is that
    // elision never loses a violation the baseline catches.
    if (mode != CheckMode::kCash) {
      EXPECT_TRUE(base.bound_violation())
          << v.name << " mode " << to_string(mode) << " baseline missed it";
    }
    EXPECT_TRUE(!base.bound_violation() || elided.bound_violation())
        << v.name << " mode " << to_string(mode) << " elision missed it";
    EXPECT_EQ(base.output, elided.output)
        << v.name << " mode " << to_string(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeded, ElideFaultIdentity,
                         testing::Range(0, 4));

// --- $CASH_NO_ELIDE: bit-identical to elision off --------------------------

TEST(ElideKillSwitch, RestoresBaselineBitForBit) {
  const char* source = kViolations[0].source;
  for (CheckMode mode : {CheckMode::kBcc, CheckMode::kCash}) {
    CompileOptions options;
    options.lower.mode = mode;
    options.lower.elide_checks = true;
    setenv("CASH_NO_ELIDE", "1", 1);
    CompileResult killed = compile(source, options);
    unsetenv("CASH_NO_ELIDE");
    options.lower.elide_checks = false;
    CompileResult off = compile(source, options);
    ASSERT_TRUE(killed.ok() && off.ok());
    EXPECT_EQ(killed.program->elide_stats().checks_removed(), 0u);
    vm::expect_identical(off.program->run(), killed.program->run(),
                         std::string("kill switch, mode ") +
                             to_string(mode));
  }
}

} // namespace
} // namespace cash
