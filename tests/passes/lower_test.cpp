// Lowering-pass tests: FCFS segment register allocation, preheader
// placement of hoisted segment loads, software fallback for spilled and
// re-seated arrays, security-only mode, and BCC check placement.
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "frontend/irgen.hpp"
#include "ir/verifier.hpp"
#include "passes/array_use.hpp"
#include "passes/lower.hpp"
#include "x86seg/segmentation_unit.hpp"

namespace cash::passes {
namespace {

std::unique_ptr<ir::Module> gen(const char* source) {
  DiagnosticSink diagnostics;
  auto module = frontend::compile_to_ir(source, diagnostics);
  EXPECT_NE(module, nullptr) << diagnostics.to_string();
  return module;
}

constexpr const char* kThreeArrays = R"(
int a[8]; int b[8]; int c[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) {
    c[i] = a[i] + b[i];
  }
  return 0;
}
)";

TEST(ArrayUse, FcfsOrderFollowsFirstAccess) {
  auto module = gen(kThreeArrays);
  const ir::Function* main_fn = module->find_function("main");
  const auto uses = analyze_loops(*main_fn);
  ASSERT_EQ(uses.size(), 1U);
  // a is read first, then b, then c is written.
  ASSERT_EQ(uses[0].arrays.size(), 3U);
  const ir::ArraySym* first = main_fn->find_array_sym(uses[0].arrays[0]);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->name, "a");
  EXPECT_EQ(main_fn->find_array_sym(uses[0].arrays[1])->name, "b");
  EXPECT_EQ(main_fn->find_array_sym(uses[0].arrays[2])->name, "c");
}

TEST(CashLower, AssignsEsFsGsInFcfsOrder) {
  auto module = gen(kThreeArrays);
  ir::Function* main_fn = module->find_function("main");
  LowerOptions options;
  options.mode = CheckMode::kCash;
  const LowerStats stats = lower_function(*main_fn, options);
  EXPECT_EQ(stats.hw_checks, 3U);
  EXPECT_EQ(stats.sw_checks, 0U);
  EXPECT_TRUE(ir::verify(*main_fn).empty());

  // Find the segment assigned per array name via the seg loads.
  std::map<std::string, int> assignment;
  for (const auto& block : main_fn->blocks) {
    for (const ir::Instr& instr : block->instrs) {
      if (instr.op == ir::Opcode::kSegLoad) {
        assignment[main_fn->find_array_sym(instr.array_ref)->name] =
            instr.seg;
      }
    }
  }
  ASSERT_EQ(assignment.size(), 3U);
  EXPECT_EQ(assignment["a"], static_cast<int>(x86seg::SegReg::kEs));
  EXPECT_EQ(assignment["b"], static_cast<int>(x86seg::SegReg::kFs));
  EXPECT_EQ(assignment["c"], static_cast<int>(x86seg::SegReg::kGs));
  EXPECT_EQ(main_fn->used_seg_regs.size(), 3U);
}

TEST(CashLower, SegLoadsLandInThePreheader) {
  auto module = gen(kThreeArrays);
  ir::Function* main_fn = module->find_function("main");
  LowerOptions options;
  options.mode = CheckMode::kCash;
  (void)lower_function(*main_fn, options);
  ASSERT_EQ(main_fn->loops.size(), 1U);
  const ir::BasicBlock& preheader =
      main_fn->block(main_fn->loops[0].preheader);
  int seg_loads = 0;
  for (const ir::Instr& instr : preheader.instrs) {
    seg_loads += instr.op == ir::Opcode::kSegLoad;
  }
  EXPECT_EQ(seg_loads, 3);
  // And none inside the loop body.
  for (ir::BlockId b : main_fn->loops[0].body) {
    for (const ir::Instr& instr : main_fn->block(b).instrs) {
      EXPECT_NE(instr.op, ir::Opcode::kSegLoad);
    }
  }
  // The preheader still ends with its terminator.
  EXPECT_NE(preheader.terminator(), nullptr);
}

TEST(CashLower, FourthArraySpillsToSoftware) {
  auto module = gen(R"(
int a[8]; int b[8]; int c[8]; int d[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) {
    d[i] = a[i] + b[i] + c[i];
  }
  return 0;
}
)");
  ir::Function* main_fn = module->find_function("main");
  LowerOptions options;
  options.mode = CheckMode::kCash;
  options.num_seg_regs = 3;
  const LowerStats stats = lower_function(*main_fn, options);
  EXPECT_EQ(stats.hw_checks, 3U);
  EXPECT_EQ(stats.sw_checks, 1U); // d spills
  EXPECT_EQ(stats.spilled_outer_loops, 1U);

  // With 4 registers d gets SS and nothing spills.
  auto module4 = gen(R"(
int a[8]; int b[8]; int c[8]; int d[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) {
    d[i] = a[i] + b[i] + c[i];
  }
  return 0;
}
)");
  ir::Function* main4 = module4->find_function("main");
  options.num_seg_regs = 4;
  const LowerStats stats4 = lower_function(*main4, options);
  EXPECT_EQ(stats4.sw_checks, 0U);
  bool uses_ss = false;
  for (std::int8_t reg : main4->used_seg_regs) {
    uses_ss = uses_ss || reg == static_cast<int>(x86seg::SegReg::kSs);
  }
  EXPECT_TRUE(uses_ss);
}

TEST(CashLower, RefsOutsideLoopsStayUnchecked) {
  auto module = gen(R"(
int a[8];
int main() {
  a[0] = 1;
  a[1] = 2;
  return a[0];
}
)");
  ir::Function* main_fn = module->find_function("main");
  LowerOptions options;
  options.mode = CheckMode::kCash;
  const LowerStats stats = lower_function(*main_fn, options);
  EXPECT_EQ(stats.hw_checks, 0U);
  EXPECT_EQ(stats.sw_checks, 0U);
  EXPECT_EQ(stats.unchecked_refs, 3U);
}

TEST(CashLower, ReseatedPointerSpillsToSoftware) {
  auto module = gen(R"(
int a[8]; int b[8];
int main() {
  int *p;
  int i;
  p = a;
  for (i = 0; i < 8; i++) {
    p[0] = i;
    p = b;
  }
  return 0;
}
)");
  ir::Function* main_fn = module->find_function("main");
  LowerOptions options;
  options.mode = CheckMode::kCash;
  const LowerStats stats = lower_function(*main_fn, options);
  // p's object changes mid-loop: its reference must be software-checked.
  EXPECT_EQ(stats.sw_checks, 1U);
}

TEST(CashLower, SecurityOnlyModeSkipsReadChecks) {
  auto module = gen(kThreeArrays);
  ir::Function* main_fn = module->find_function("main");
  LowerOptions options;
  options.mode = CheckMode::kCash;
  options.check_reads = false;
  const LowerStats stats = lower_function(*main_fn, options);
  // Only the store to c is checked; reads of a and b are left alone and
  // only one segment register is consumed.
  EXPECT_EQ(stats.hw_checks, 1U);
  EXPECT_EQ(stats.unchecked_refs, 2U);
  EXPECT_EQ(main_fn->used_seg_regs.size(), 1U);
}

TEST(BccLower, ChecksEveryArrayRefIncludingOutsideLoops) {
  auto module = gen(R"(
int a[8];
int main() {
  int i;
  a[0] = 1;
  for (i = 0; i < 8; i++) {
    a[i] = a[i] + 1;
  }
  return a[7];
}
)");
  ir::Function* main_fn = module->find_function("main");
  LowerOptions options;
  options.mode = CheckMode::kBcc;
  const LowerStats stats = lower_function(*main_fn, options);
  EXPECT_EQ(stats.sw_checks, 4U); // store, load+store in loop, final load
  EXPECT_TRUE(ir::verify(*main_fn).empty());

  // Each check instruction directly precedes its access and shares the
  // address register.
  for (const auto& block : main_fn->blocks) {
    for (std::size_t i = 0; i < block->instrs.size(); ++i) {
      if (block->instrs[i].op == ir::Opcode::kBoundCheckSw) {
        ASSERT_LT(i + 1, block->instrs.size());
        const ir::Instr& next = block->instrs[i + 1];
        EXPECT_TRUE(next.is_memory_access());
        EXPECT_EQ(next.src0, block->instrs[i].src0);
      }
    }
  }
}

TEST(Lower, NoCheckLeavesEverythingUnchecked) {
  auto module = gen(kThreeArrays);
  ir::Function* main_fn = module->find_function("main");
  LowerOptions options;
  options.mode = CheckMode::kNoCheck;
  const LowerStats stats = lower_function(*main_fn, options);
  EXPECT_EQ(stats.hw_checks, 0U);
  EXPECT_EQ(stats.sw_checks, 0U);
  EXPECT_EQ(stats.unchecked_refs, 3U);
}

TEST(CodeSize, ModesAreOrdered) {
  for (const char* source : {kThreeArrays}) {
    auto compile_mode = [&](CheckMode mode) {
      CompileOptions options;
      options.lower.mode = mode;
      CompileResult compiled = compile(source, options);
      EXPECT_TRUE(compiled.ok());
      return compiled.program->code_size().total_bytes;
    };
    const auto gcc = compile_mode(CheckMode::kNoCheck);
    const auto cash_size = compile_mode(CheckMode::kCash);
    const auto bcc = compile_mode(CheckMode::kBcc);
    const auto bound = compile_mode(CheckMode::kBoundInsn);
    EXPECT_LT(gcc, cash_size);
    EXPECT_LT(cash_size, bcc);
    EXPECT_LT(bound, bcc); // bound insn is shorter than the 6-insn sequence
    EXPECT_GT(bound, gcc);
  }
}

} // namespace
} // namespace cash::passes
