// Optimiser tests: semantics preservation (especially the signed div/rem
// strength reduction around negative operands), hoisting, CSE and DCE
// effectiveness, and cycle-count reductions.
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "frontend/irgen.hpp"
#include "passes/optimize.hpp"
#include "workloads/workloads.hpp"

namespace cash {
namespace {

using passes::CheckMode;

vm::RunResult run_src(const std::string& source, bool optimize) {
  CompileOptions options;
  options.lower.mode = CheckMode::kNoCheck;
  options.optimize = optimize;
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  vm::RunResult run = compiled.program->run();
  EXPECT_TRUE(run.ok) << (run.fault ? run.fault->detail : run.error);
  return run;
}

void expect_same_output_less_cycles(const std::string& source,
                                    bool strictly_fewer = true) {
  const vm::RunResult raw = run_src(source, false);
  const vm::RunResult opt = run_src(source, true);
  EXPECT_EQ(raw.output, opt.output);
  EXPECT_EQ(raw.exit_code, opt.exit_code);
  if (strictly_fewer) {
    EXPECT_LT(opt.cycles, raw.cycles);
  } else {
    EXPECT_LE(opt.cycles, raw.cycles);
  }
}

TEST(Optimizer, SignedDivRemByPowerOfTwoMatchesCSemantics) {
  // Exhaustively compare x / C and x % C against the interpreter's own
  // unoptimised idiv path for negative, zero and positive operands.
  const char* source = R"(
int main() {
  int i;
  int acc = 0;
  for (i = 0 - 37; i <= 37; i++) {
    acc = acc * 3 + i / 8 + i % 8 + i / 2 + i % 16;
    print_int(i / 8);
    print_int(i % 8);
  }
  return acc;
}
)";
  const vm::RunResult raw = run_src(source, false);
  const vm::RunResult opt = run_src(source, true);
  EXPECT_EQ(raw.output, opt.output);
  EXPECT_EQ(raw.exit_code, opt.exit_code);
  EXPECT_LT(opt.cycles, raw.cycles); // idiv 24 -> ~5 ops
}

TEST(Optimizer, MulByPowerOfTwoBecomesShift) {
  expect_same_output_less_cycles(R"(
int main() {
  int i; int s = 0;
  for (i = 0; i < 100; i++) {
    s = s + i * 16 + i * 1;
  }
  print_int(s);
  return 0;
}
)");
}

TEST(Optimizer, LoopInvariantAddressComputationIsHoisted) {
  // i*N inside the k-loop is invariant; without LICM it costs a multiply
  // per iteration.
  expect_same_output_less_cycles(R"(
int a[64];
int main() {
  int i; int k; int s = 0;
  for (i = 0; i < 8; i++) {
    for (k = 0; k < 8; k++) {
      s = s + a[i * 8 + k];
    }
  }
  print_int(s);
  return 0;
}
)");
}

TEST(Optimizer, CseRemovesRepeatedSubexpressions) {
  expect_same_output_less_cycles(R"(
int a[16];
int main() {
  int i; int s = 0;
  for (i = 0; i < 16; i++) {
    a[i * 3 % 16] = a[i * 3 % 16] + 1;
    s = s + a[i * 3 % 16];
  }
  print_int(s);
  return 0;
}
)");
}

TEST(Optimizer, DivByZeroStillFaultsAfterOptimization) {
  const char* source = R"(
int main() {
  int x = 4;
  int y = 0;
  return x / y;
}
)";
  CompileOptions options;
  options.lower.mode = CheckMode::kNoCheck;
  CompileResult compiled = compile(source, options);
  ASSERT_TRUE(compiled.ok());
  const vm::RunResult run = compiled.program->run();
  EXPECT_FALSE(run.ok);
  ASSERT_TRUE(run.fault.has_value());
  EXPECT_EQ(run.fault->kind, FaultKind::kInvalidOpcode);
}

TEST(Optimizer, DivInsideConditionalIsNotHoistedSpeculatively) {
  // The division only executes when safe; LICM must not move it to the
  // preheader where it would fault.
  const char* source = R"(
int main() {
  int i; int d = 0; int s = 0;
  for (i = 0; i < 10; i++) {
    if (d != 0) {
      s = s + 100 / d;
    }
  }
  print_int(s);
  return 0;
}
)";
  const vm::RunResult opt = run_src(source, true);
  EXPECT_EQ(opt.output, "0\n");
}

TEST(Optimizer, PointerHoistKeepsShadowInfoIntact) {
  // Hoisting kAddrLocal/kAddrGlobal must not lose the bound metadata —
  // the Cash check still fires.
  const char* source = R"(
int buf[8];
int main() {
  int i;
  for (i = 0; i < 12; i++) {
    buf[i] = i;
  }
  return 0;
}
)";
  CompileOptions options;
  options.lower.mode = CheckMode::kCash;
  CompileResult compiled = compile(source, options);
  ASSERT_TRUE(compiled.ok());
  const vm::RunResult run = compiled.program->run();
  EXPECT_FALSE(run.ok);
  EXPECT_TRUE(run.bound_violation());
}

TEST(Optimizer, ReportsWorkDone) {
  DiagnosticSink diagnostics;
  auto module = frontend::compile_to_ir(R"(
int a[64];
int main() {
  int i; int k; int s = 0;
  for (i = 0; i < 8; i++) {
    for (k = 0; k < 8; k++) {
      s = s + a[i * 8 + k] * 4;
    }
  }
  return s;
}
)",
                                        diagnostics);
  ASSERT_NE(module, nullptr);
  const passes::OptStats stats = passes::optimize_module(*module);
  EXPECT_GT(stats.strength_reduced, 0U);
  EXPECT_GT(stats.hoisted, 0U);
  EXPECT_GT(stats.dead_removed, 0U);
}

TEST(Optimizer, WorkloadChecksumsUnchanged) {
  // The macro workloads must compute identical results with and without
  // optimisation — a broad semantics-preservation sweep.
  for (const auto& w : workloads::macro_suite()) {
    if (w.name != "Gif2png" && w.name != "RayLab") {
      continue; // two representative apps keep this test fast
    }
    const vm::RunResult raw = run_src(w.source, false);
    const vm::RunResult opt = run_src(w.source, true);
    EXPECT_EQ(raw.output, opt.output) << w.name;
  }
}

} // namespace
} // namespace cash
