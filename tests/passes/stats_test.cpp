// Tests of the static program-statistics and code-size models feeding
// Tables 2/4/6/7.
#include <gtest/gtest.h>

#include "core/cash.hpp"
#include "frontend/irgen.hpp"
#include "passes/code_size.hpp"
#include "passes/program_stats.hpp"

namespace cash::passes {
namespace {

constexpr const char* kSample = R"(
int a[8]; int b[8]; int c[8]; int d[8];
int helper(int x) {
  int i; int s = 0;
  for (i = 0; i < x; i++) {
    s = s + a[i % 8];
  }
  return s;
}
int main() {
  int i; int j; int s = 0;
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      d[j] = a[j] + b[j] + c[j];
    }
  }
  for (i = 0; i < 4; i++) {
    s = s + 1;
  }
  return s + helper(5);
}
)";

TEST(ProgramStats, CountsLoopsAndBudget) {
  DiagnosticSink diagnostics;
  auto module = frontend::compile_to_ir(kSample, diagnostics);
  ASSERT_NE(module, nullptr) << diagnostics.to_string();
  const ProgramStats stats = compute_program_stats(*module, kSample, 3);
  EXPECT_EQ(stats.total_functions, 2U);
  EXPECT_EQ(stats.total_loops, 4U);
  // helper's loop + the i/j nest (both i and j loops see the 4 arrays);
  // the counting loop uses none.
  EXPECT_EQ(stats.array_using_loops, 3U);
  EXPECT_EQ(stats.loops_over_budget, 2U); // i and j loops: 4 distinct arrays
  EXPECT_EQ(stats.max_arrays_in_loop, 4U);
  EXPECT_GT(stats.lines_of_code, 15U);
  EXPECT_GT(stats.total_array_refs, 0U);
}

TEST(ProgramStats, BudgetOfFourAbsorbsTheNest) {
  DiagnosticSink diagnostics;
  auto module = frontend::compile_to_ir(kSample, diagnostics);
  ASSERT_NE(module, nullptr);
  const ProgramStats stats = compute_program_stats(*module, kSample, 4);
  EXPECT_EQ(stats.loops_over_budget, 0U);
}

TEST(CodeSize, CashAppGrowthComesFromSegmentSetupAndFatPointers) {
  auto size_for = [&](CheckMode mode) {
    CompileOptions options;
    options.lower.mode = mode;
    CompileResult compiled = compile(kSample, options);
    EXPECT_TRUE(compiled.ok());
    return compiled.program->code_size();
  };
  const CodeSize gcc = size_for(CheckMode::kNoCheck);
  const CodeSize cash_size = size_for(CheckMode::kCash);
  const CodeSize bcc = size_for(CheckMode::kBcc);
  // App code grows in both checked modes. (For tiny programs with few
  // check sites Cash's app-level set-up code can exceed BCC's; it is the
  // totals — dominated by the recompiled library — that the paper orders.)
  EXPECT_LT(gcc.app_bytes, cash_size.app_bytes);
  EXPECT_LT(gcc.app_bytes, bcc.app_bytes);
  EXPECT_LT(cash_size.total_bytes, bcc.total_bytes);
  // Library: the recompiled-libc constants dominate, as in the paper.
  EXPECT_EQ(gcc.library_bytes, kLibraryBytesGcc);
  EXPECT_EQ(cash_size.library_bytes, kLibraryBytesCash);
  EXPECT_EQ(bcc.library_bytes, kLibraryBytesBcc);
  EXPECT_EQ(gcc.total_bytes, gcc.app_bytes + gcc.library_bytes);
  // Overall percentages land in the paper's bands: Cash ~25-65 %,
  // BCC ~120-155 %.
  const double cash_pct =
      100.0 *
      (static_cast<double>(cash_size.total_bytes) -
       static_cast<double>(gcc.total_bytes)) /
      static_cast<double>(gcc.total_bytes);
  const double bcc_pct =
      100.0 *
      (static_cast<double>(bcc.total_bytes) -
       static_cast<double>(gcc.total_bytes)) /
      static_cast<double>(gcc.total_bytes);
  EXPECT_GT(cash_pct, 20.0);
  EXPECT_LT(cash_pct, 70.0);
  EXPECT_GT(bcc_pct, 110.0);
  EXPECT_LT(bcc_pct, 160.0);
}

TEST(CodeSize, BccGrowsWithCheckSites) {
  // More static array references => more 6-instruction sequences => a
  // bigger BCC binary, while the unchecked build grows much less.
  const char* few_refs = R"(
int a[16];
int main() {
  int i; int s = 0;
  for (i = 0; i < 16; i++) { s = s + a[i]; }
  return s;
}
)";
  const char* many_refs = R"(
int a[16];
int main() {
  int i; int s = 0;
  for (i = 0; i < 16; i++) {
    s = s + a[i] + a[(i+1) % 16] + a[(i+2) % 16] + a[(i+3) % 16]
          + a[(i+4) % 16] + a[(i+5) % 16] + a[(i+6) % 16] + a[(i+7) % 16];
  }
  return s;
}
)";
  auto app_bytes = [&](const char* source, CheckMode mode) {
    CompileOptions options;
    options.lower.mode = mode;
    CompileResult compiled = compile(source, options);
    EXPECT_TRUE(compiled.ok());
    return compiled.program->code_size().app_bytes;
  };
  const auto bcc_growth = app_bytes(many_refs, CheckMode::kBcc) -
                          app_bytes(few_refs, CheckMode::kBcc);
  const auto gcc_growth = app_bytes(many_refs, CheckMode::kNoCheck) -
                          app_bytes(few_refs, CheckMode::kNoCheck);
  EXPECT_GT(bcc_growth, gcc_growth + 7 * 18 - 30); // ~18 B per extra check
}

} // namespace
} // namespace cash::passes
