// Tests of Gupta-style redundant check elimination (related work [15,16]):
// a second check of the same, unmodified address register in a block is
// dropped — without weakening detection.
#include <gtest/gtest.h>

#include "core/cash.hpp"

namespace cash {
namespace {

using passes::CheckMode;

// a[i] += 1 : the CSE'd address is checked once for the load, and the
// store's check is provably redundant.
constexpr const char* kReadModifyWrite = R"(
int a[32];
int main() {
  int i; int s = 0;
  for (i = 0; i < 32; i++) {
    a[i] = a[i] + 1;
  }
  for (i = 0; i < 32; i++) {
    s = s + a[i];
  }
  return s;
}
)";

CompileResult compile_rce(const char* source, bool rce,
                          CheckMode mode = CheckMode::kBcc) {
  CompileOptions options;
  options.lower.mode = mode;
  options.lower.eliminate_redundant_checks = rce;
  return compile(source, options);
}

TEST(Rce, DropsTheSecondCheckOfAReadModifyWrite) {
  CompileResult plain = compile_rce(kReadModifyWrite, false);
  CompileResult rce = compile_rce(kReadModifyWrite, true);
  ASSERT_TRUE(plain.ok() && rce.ok());
  EXPECT_EQ(plain.program->lower_stats().redundant_eliminated, 0U);
  EXPECT_GT(rce.program->lower_stats().redundant_eliminated, 0U);
  EXPECT_LT(rce.program->lower_stats().sw_checks,
            plain.program->lower_stats().sw_checks);

  const vm::RunResult a = plain.program->run();
  const vm::RunResult b = rce.program->run();
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_LT(b.cycles, a.cycles);
}

TEST(Rce, DetectionIsPreserved) {
  constexpr const char* kOverflow = R"(
int a[8];
int main() {
  int i;
  for (i = 0; i < 12; i++) {
    a[i] = a[i] + 1;
  }
  return 0;
}
)";
  for (CheckMode mode : {CheckMode::kBcc, CheckMode::kBoundInsn}) {
    CompileResult rce = compile_rce(kOverflow, true, mode);
    ASSERT_TRUE(rce.ok());
    const vm::RunResult r = rce.program->run();
    EXPECT_FALSE(r.ok) << to_string(mode);
    ASSERT_TRUE(r.fault.has_value());
    EXPECT_TRUE(r.bound_violation());
  }
}

TEST(Rce, RedefinedAddressIsCheckedAgain) {
  // Two different elements in the same block: both checks must stay.
  constexpr const char* kTwoElems = R"(
int a[16];
int main() {
  int i;
  for (i = 0; i < 8; i++) {
    a[i] = 1;
    a[i + 8] = 2;
  }
  return 0;
}
)";
  CompileResult rce = compile_rce(kTwoElems, true);
  ASSERT_TRUE(rce.ok());
  EXPECT_EQ(rce.program->lower_stats().redundant_eliminated, 0U);
  EXPECT_EQ(rce.program->lower_stats().sw_checks, 2U);
}

TEST(Rce, WorksForShadowModeToo) {
  CompileResult plain =
      compile_rce(kReadModifyWrite, false, CheckMode::kShadow);
  CompileResult rce = compile_rce(kReadModifyWrite, true, CheckMode::kShadow);
  ASSERT_TRUE(plain.ok() && rce.ok());
  const vm::RunResult a = plain.program->run();
  const vm::RunResult b = rce.program->run();
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_LT(b.shadow_cycles, a.shadow_cycles);
}

TEST(Rce, NeverAppliedToCashHardwareChecks) {
  // Hardware checks are free — there is nothing to eliminate; the option
  // must be a no-op for Cash.
  CompileOptions options;
  options.lower.mode = CheckMode::kCash;
  options.lower.eliminate_redundant_checks = true;
  CompileResult compiled = compile(kReadModifyWrite, options);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled.program->lower_stats().redundant_eliminated, 0U);
  EXPECT_GT(compiled.program->lower_stats().hw_checks, 0U);
}

} // namespace
} // namespace cash
