// Tests of the common support types: Result/Status carriers, fault
// formatting, and the diagnostic sink.
#include <gtest/gtest.h>

#include "common/diagnostics.hpp"
#include "common/fault.hpp"
#include "common/result.hpp"

namespace cash {
namespace {

TEST(Result, CarriesValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, CarriesFault) {
  Result<int> r(Fault{FaultKind::kPageFault, 0x1000, 0, "boom"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault().kind, FaultKind::kPageFault);
  EXPECT_EQ(r.fault().linear_address, 0x1000U);
  EXPECT_EQ(r.fault().detail, "boom");
}

TEST(Status, DefaultIsOk) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status bad(Fault{FaultKind::kGeneralProtection, 0, 0x17, "sel"});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.fault().selector, 0x17);
}

TEST(Fault, KindNames) {
  EXPECT_STREQ(to_string(FaultKind::kGeneralProtection),
               "#GP general-protection fault");
  EXPECT_STREQ(to_string(FaultKind::kPageFault), "#PF page fault");
  EXPECT_STREQ(to_string(FaultKind::kBoundRange), "#BR bound-range exceeded");
  EXPECT_STREQ(to_string(FaultKind::kStackFault), "#SS stack fault");
  EXPECT_STREQ(to_string(FaultKind::kSegmentNotPresent),
               "#NP segment-not-present fault");
  EXPECT_STREQ(to_string(FaultKind::kInvalidOpcode), "#UD invalid opcode");
}

TEST(FaultException, FormatsKindAndDetail) {
  try {
    throw FaultException(Fault{FaultKind::kPageFault, 0, 0, "guard hit"});
  } catch (const FaultException& e) {
    EXPECT_NE(std::string(e.what()).find("#PF"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("guard hit"), std::string::npos);
    EXPECT_EQ(e.fault().kind, FaultKind::kPageFault);
  }
}

TEST(DiagnosticSink, CountsErrorsNotWarnings) {
  DiagnosticSink sink;
  sink.warning({1, 1}, "meh");
  EXPECT_FALSE(sink.has_errors());
  sink.error({2, 5}, "bad");
  sink.error({3, 1}, "worse");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 2);
  EXPECT_EQ(sink.diagnostics().size(), 3U);
}

TEST(DiagnosticSink, RendersLineColumnSeverity) {
  DiagnosticSink sink;
  sink.error({7, 3}, "unexpected token");
  sink.warning({9, 1}, "unused");
  const std::string text = sink.to_string();
  EXPECT_NE(text.find("7:3: error: unexpected token"), std::string::npos);
  EXPECT_NE(text.find("9:1: warning: unused"), std::string::npos);
}

} // namespace
} // namespace cash
