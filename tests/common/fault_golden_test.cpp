// Golden fault-message tests: format_fault() is the single-line rendering
// used by diagnostics consumers (bench violation reports, netsim failure
// details), so its exact output is pinned here — kind name, detail,
// function/line context, selector and linear address. A change to any of
// these strings is an API change and must update the goldens deliberately.
#include <gtest/gtest.h>

#include "common/diagnostics.hpp"
#include "core/cash.hpp"
#include "faultinject/faultinject.hpp"
#include "vm/machine.hpp"
#include "x86seg/segmentation_unit.hpp"

namespace cash {
namespace {

vm::RunResult run_cash(const std::string& source,
                       const vm::MachineConfig* cfg = nullptr) {
  CompileOptions options;
  options.lower.mode = passes::CheckMode::kCash;
  if (cfg != nullptr) {
    options.machine = *cfg;
  }
  CompileResult compiled = compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.error;
  return compiled.program->run();
}

TEST(FaultGolden, CashBoundViolation) {
  // The paper's headline event: a[16] of int a[16] trips the segment limit
  // in the address-translation pipeline.
  const vm::RunResult r = run_cash(R"(
int a[16];
int main() {
  int i;
  for (i = 0; i <= 16; i++) {
    a[i] = i;
  }
  return 0;
}
)");
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_TRUE(r.bound_violation());
  EXPECT_EQ(format_fault(*r.fault),
            "#GP general-protection fault: segment-limit violation through "
            "ES: offset 0x40 size 4 exceeds limit 0x3f [in main at line 6] "
            "(selector 0xf) (linear 0x810004c)");
}

TEST(FaultGolden, NullSelectorIntoStackSegment) {
  CompileResult compiled = compile("int main() { return 0; }", {});
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  std::unique_ptr<vm::Machine> machine = compiled.program->make_machine();
  const Status status =
      machine->segmentation().load(x86seg::SegReg::kSs, x86seg::Selector());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(format_fault(status.fault()),
            "#GP general-protection fault: null selector loaded into CS/SS");
}

TEST(FaultGolden, GranularitySlackUnderrun) {
  // 300000 ints = 1.2 MB: page-granular descriptor, so the lower bound has
  // (span - size) bytes of slack. One word below the slack wraps the
  // segment offset and trips the (page-granular) limit.
  const std::uint32_t size = 300000 * 4;
  const std::uint32_t span = ((size + 4095) / 4096) * 4096;
  const int below = -static_cast<int>((span - size) / 4) - 1;
  const std::string source = "\nint a[300000];\nint main() {\n  int i;\n"
                             "  for (i = " +
                             std::to_string(below) +
                             "; i <= 10; i++) {\n    a[i] = i;\n  }\n"
                             "  return 0;\n}\n";
  const vm::RunResult r = run_cash(source);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_EQ(format_fault(*r.fault),
            "#GP general-protection fault: segment-limit violation through "
            "ES: offset 0xfffffffc size 4 exceeds limit 0x124fff "
            "[in main at line 6] (selector 0xf) (linear 0x80fff88)");
}

TEST(FaultGolden, HeapExhaustion) {
  vm::MachineConfig cfg;
  cfg.fault_plan.rules.push_back(
      {faultinject::FaultSite::kHeapAlloc, 0, 1, 0, 1});
  const vm::RunResult r = run_cash(R"(
int main() {
  int *p;
  p = malloc(32);
  p[0] = 1;
  return p[0];
}
)",
                                   &cfg);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_FALSE(r.bound_violation()); // resource exhaustion, not a bound trip
  EXPECT_EQ(format_fault(*r.fault),
            "resource-exhaustion fault: simulated heap exhausted: "
            "malloc(32) [in main at line 4]");
}

TEST(FaultGolden, PhysicalMemoryExhaustion) {
  // Genuine exhaustion (no injection): a 2-frame machine cannot map four
  // 8 KB globals.
  vm::MachineConfig cfg;
  cfg.phys_frames = 2;
  const vm::RunResult r = run_cash(R"(
int g0[2000]; int g1[2000]; int g2[2000]; int g3[2000];
int main() {
  g0[0] = 1; g1[0] = 2; g2[0] = 3; g3[0] = 4;
  return g0[0] + g1[0] + g2[0] + g3[0];
}
)",
                                   &cfg);
  ASSERT_TRUE(r.fault.has_value());
  EXPECT_TRUE(r.error.empty()); // structured fault, not a host error string
  EXPECT_EQ(format_fault(*r.fault),
            "resource-exhaustion fault: simulated physical memory "
            "exhausted: all 2 frames in use");
}

TEST(FaultGolden, CrossProcessSelector) {
  // The multi-process isolation message (DESIGN.md §10): a selector from
  // one process's LDT resolves to nothing in another process.
  kernel::KernelSim kern;
  const kernel::Pid a = kern.create_process();
  const kernel::Pid b = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(a).ok());
  ASSERT_TRUE(kern.cash_modify_ldt(
                      a, 1, x86seg::SegmentDescriptor::for_array(0x1000, 64))
                  .ok());
  const auto cross = kern.resolve_selector(
      b, x86seg::Selector::make(1, /*local=*/true, /*rpl=*/3));
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(format_fault(cross.fault()),
            "#GP general-protection fault: selector names no live descriptor "
            "in this process (segment handles are process-private) "
            "(selector 0xf)");
}

TEST(FaultGolden, SharedLdtBudgetExhausted) {
  // The multi-tenant budget refusal, surfaced after the call-gate charge.
  kernel::KernelSim kern;
  kern.set_ldt_slot_budget(1);
  const kernel::Pid a = kern.create_process();
  ASSERT_TRUE(kern.set_ldt_callgate(a).ok()); // consumes the only slot
  const Status refused = kern.cash_modify_ldt(
      a, 1, x86seg::SegmentDescriptor::for_array(0x1000, 64));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(format_fault(refused.fault()),
            "resource-exhaustion fault: cash_modify_ldt: shared LDT slot "
            "budget exhausted (selector 0xf)");
}

} // namespace
} // namespace cash
