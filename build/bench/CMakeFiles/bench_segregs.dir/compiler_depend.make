# Empty compiler generated dependencies file for bench_segregs.
# This may be replaced when dependencies are built.
