file(REMOVE_RECURSE
  "CMakeFiles/bench_segregs.dir/bench_segregs.cpp.o"
  "CMakeFiles/bench_segregs.dir/bench_segregs.cpp.o.d"
  "bench_segregs"
  "bench_segregs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_segregs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
