file(REMOVE_RECURSE
  "CMakeFiles/bench_multildt.dir/bench_multildt.cpp.o"
  "CMakeFiles/bench_multildt.dir/bench_multildt.cpp.o.d"
  "bench_multildt"
  "bench_multildt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multildt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
