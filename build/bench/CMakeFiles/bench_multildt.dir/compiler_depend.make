# Empty compiler generated dependencies file for bench_multildt.
# This may be replaced when dependencies are built.
