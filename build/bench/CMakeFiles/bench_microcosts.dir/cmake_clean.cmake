file(REMOVE_RECURSE
  "CMakeFiles/bench_microcosts.dir/bench_microcosts.cpp.o"
  "CMakeFiles/bench_microcosts.dir/bench_microcosts.cpp.o.d"
  "bench_microcosts"
  "bench_microcosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microcosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
