# Empty compiler generated dependencies file for bench_microcosts.
# This may be replaced when dependencies are built.
