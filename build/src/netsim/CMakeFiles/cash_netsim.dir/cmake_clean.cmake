file(REMOVE_RECURSE
  "CMakeFiles/cash_netsim.dir/netsim.cpp.o"
  "CMakeFiles/cash_netsim.dir/netsim.cpp.o.d"
  "libcash_netsim.a"
  "libcash_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
