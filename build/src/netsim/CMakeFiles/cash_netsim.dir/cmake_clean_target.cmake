file(REMOVE_RECURSE
  "libcash_netsim.a"
)
