# Empty dependencies file for cash_netsim.
# This may be replaced when dependencies are built.
