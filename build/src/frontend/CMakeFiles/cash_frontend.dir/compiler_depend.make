# Empty compiler generated dependencies file for cash_frontend.
# This may be replaced when dependencies are built.
