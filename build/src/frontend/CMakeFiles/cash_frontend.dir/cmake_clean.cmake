file(REMOVE_RECURSE
  "CMakeFiles/cash_frontend.dir/irgen.cpp.o"
  "CMakeFiles/cash_frontend.dir/irgen.cpp.o.d"
  "CMakeFiles/cash_frontend.dir/lexer.cpp.o"
  "CMakeFiles/cash_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/cash_frontend.dir/parser.cpp.o"
  "CMakeFiles/cash_frontend.dir/parser.cpp.o.d"
  "libcash_frontend.a"
  "libcash_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
