file(REMOVE_RECURSE
  "libcash_frontend.a"
)
