# Empty dependencies file for cash_workloads.
# This may be replaced when dependencies are built.
