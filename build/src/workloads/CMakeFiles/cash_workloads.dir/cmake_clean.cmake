file(REMOVE_RECURSE
  "CMakeFiles/cash_workloads.dir/fuzz.cpp.o"
  "CMakeFiles/cash_workloads.dir/fuzz.cpp.o.d"
  "CMakeFiles/cash_workloads.dir/macro.cpp.o"
  "CMakeFiles/cash_workloads.dir/macro.cpp.o.d"
  "CMakeFiles/cash_workloads.dir/micro.cpp.o"
  "CMakeFiles/cash_workloads.dir/micro.cpp.o.d"
  "CMakeFiles/cash_workloads.dir/network.cpp.o"
  "CMakeFiles/cash_workloads.dir/network.cpp.o.d"
  "CMakeFiles/cash_workloads.dir/reference.cpp.o"
  "CMakeFiles/cash_workloads.dir/reference.cpp.o.d"
  "libcash_workloads.a"
  "libcash_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
