file(REMOVE_RECURSE
  "libcash_workloads.a"
)
