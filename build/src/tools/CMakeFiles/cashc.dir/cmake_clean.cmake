file(REMOVE_RECURSE
  "../../tools/cashc"
  "../../tools/cashc.pdb"
  "CMakeFiles/cashc.dir/cashc.cpp.o"
  "CMakeFiles/cashc.dir/cashc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cashc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
