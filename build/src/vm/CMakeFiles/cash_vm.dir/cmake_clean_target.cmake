file(REMOVE_RECURSE
  "libcash_vm.a"
)
