# Empty compiler generated dependencies file for cash_vm.
# This may be replaced when dependencies are built.
