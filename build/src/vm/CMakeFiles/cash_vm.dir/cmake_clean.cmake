file(REMOVE_RECURSE
  "CMakeFiles/cash_vm.dir/machine.cpp.o"
  "CMakeFiles/cash_vm.dir/machine.cpp.o.d"
  "libcash_vm.a"
  "libcash_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
