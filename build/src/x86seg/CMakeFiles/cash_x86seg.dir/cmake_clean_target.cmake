file(REMOVE_RECURSE
  "libcash_x86seg.a"
)
