# Empty compiler generated dependencies file for cash_x86seg.
# This may be replaced when dependencies are built.
