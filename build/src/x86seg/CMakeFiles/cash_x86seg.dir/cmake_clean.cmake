file(REMOVE_RECURSE
  "CMakeFiles/cash_x86seg.dir/descriptor.cpp.o"
  "CMakeFiles/cash_x86seg.dir/descriptor.cpp.o.d"
  "CMakeFiles/cash_x86seg.dir/descriptor_table.cpp.o"
  "CMakeFiles/cash_x86seg.dir/descriptor_table.cpp.o.d"
  "CMakeFiles/cash_x86seg.dir/segmentation_unit.cpp.o"
  "CMakeFiles/cash_x86seg.dir/segmentation_unit.cpp.o.d"
  "libcash_x86seg.a"
  "libcash_x86seg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_x86seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
