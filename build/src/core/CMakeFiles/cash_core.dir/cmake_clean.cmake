file(REMOVE_RECURSE
  "CMakeFiles/cash_core.dir/cash.cpp.o"
  "CMakeFiles/cash_core.dir/cash.cpp.o.d"
  "libcash_core.a"
  "libcash_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
