file(REMOVE_RECURSE
  "libcash_core.a"
)
