# Empty compiler generated dependencies file for cash_core.
# This may be replaced when dependencies are built.
