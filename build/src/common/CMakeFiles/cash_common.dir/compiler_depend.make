# Empty compiler generated dependencies file for cash_common.
# This may be replaced when dependencies are built.
