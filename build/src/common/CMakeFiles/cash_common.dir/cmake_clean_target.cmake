file(REMOVE_RECURSE
  "libcash_common.a"
)
