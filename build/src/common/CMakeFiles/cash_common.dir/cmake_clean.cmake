file(REMOVE_RECURSE
  "CMakeFiles/cash_common.dir/diagnostics.cpp.o"
  "CMakeFiles/cash_common.dir/diagnostics.cpp.o.d"
  "CMakeFiles/cash_common.dir/fault.cpp.o"
  "CMakeFiles/cash_common.dir/fault.cpp.o.d"
  "libcash_common.a"
  "libcash_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
