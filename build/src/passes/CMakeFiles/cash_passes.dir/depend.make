# Empty dependencies file for cash_passes.
# This may be replaced when dependencies are built.
