file(REMOVE_RECURSE
  "libcash_passes.a"
)
