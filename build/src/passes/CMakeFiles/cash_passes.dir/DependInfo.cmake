
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/array_use.cpp" "src/passes/CMakeFiles/cash_passes.dir/array_use.cpp.o" "gcc" "src/passes/CMakeFiles/cash_passes.dir/array_use.cpp.o.d"
  "/root/repo/src/passes/code_size.cpp" "src/passes/CMakeFiles/cash_passes.dir/code_size.cpp.o" "gcc" "src/passes/CMakeFiles/cash_passes.dir/code_size.cpp.o.d"
  "/root/repo/src/passes/lower.cpp" "src/passes/CMakeFiles/cash_passes.dir/lower.cpp.o" "gcc" "src/passes/CMakeFiles/cash_passes.dir/lower.cpp.o.d"
  "/root/repo/src/passes/optimize.cpp" "src/passes/CMakeFiles/cash_passes.dir/optimize.cpp.o" "gcc" "src/passes/CMakeFiles/cash_passes.dir/optimize.cpp.o.d"
  "/root/repo/src/passes/program_stats.cpp" "src/passes/CMakeFiles/cash_passes.dir/program_stats.cpp.o" "gcc" "src/passes/CMakeFiles/cash_passes.dir/program_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cash_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/x86seg/CMakeFiles/cash_x86seg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
