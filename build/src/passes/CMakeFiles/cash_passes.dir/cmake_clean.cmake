file(REMOVE_RECURSE
  "CMakeFiles/cash_passes.dir/array_use.cpp.o"
  "CMakeFiles/cash_passes.dir/array_use.cpp.o.d"
  "CMakeFiles/cash_passes.dir/code_size.cpp.o"
  "CMakeFiles/cash_passes.dir/code_size.cpp.o.d"
  "CMakeFiles/cash_passes.dir/lower.cpp.o"
  "CMakeFiles/cash_passes.dir/lower.cpp.o.d"
  "CMakeFiles/cash_passes.dir/optimize.cpp.o"
  "CMakeFiles/cash_passes.dir/optimize.cpp.o.d"
  "CMakeFiles/cash_passes.dir/program_stats.cpp.o"
  "CMakeFiles/cash_passes.dir/program_stats.cpp.o.d"
  "libcash_passes.a"
  "libcash_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
