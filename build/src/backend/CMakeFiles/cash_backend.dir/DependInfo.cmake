
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/x86_asm.cpp" "src/backend/CMakeFiles/cash_backend.dir/x86_asm.cpp.o" "gcc" "src/backend/CMakeFiles/cash_backend.dir/x86_asm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cash_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
