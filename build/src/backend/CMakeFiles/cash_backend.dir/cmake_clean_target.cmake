file(REMOVE_RECURSE
  "libcash_backend.a"
)
