file(REMOVE_RECURSE
  "CMakeFiles/cash_backend.dir/x86_asm.cpp.o"
  "CMakeFiles/cash_backend.dir/x86_asm.cpp.o.d"
  "libcash_backend.a"
  "libcash_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
