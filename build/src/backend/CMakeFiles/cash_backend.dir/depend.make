# Empty dependencies file for cash_backend.
# This may be replaced when dependencies are built.
