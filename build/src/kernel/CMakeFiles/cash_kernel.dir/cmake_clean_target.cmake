file(REMOVE_RECURSE
  "libcash_kernel.a"
)
