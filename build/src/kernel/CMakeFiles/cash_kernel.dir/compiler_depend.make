# Empty compiler generated dependencies file for cash_kernel.
# This may be replaced when dependencies are built.
