file(REMOVE_RECURSE
  "CMakeFiles/cash_kernel.dir/kernel_sim.cpp.o"
  "CMakeFiles/cash_kernel.dir/kernel_sim.cpp.o.d"
  "libcash_kernel.a"
  "libcash_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
