file(REMOVE_RECURSE
  "CMakeFiles/cash_paging.dir/page_table.cpp.o"
  "CMakeFiles/cash_paging.dir/page_table.cpp.o.d"
  "CMakeFiles/cash_paging.dir/physical_memory.cpp.o"
  "CMakeFiles/cash_paging.dir/physical_memory.cpp.o.d"
  "libcash_paging.a"
  "libcash_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
