file(REMOVE_RECURSE
  "libcash_paging.a"
)
