# Empty compiler generated dependencies file for cash_paging.
# This may be replaced when dependencies are built.
