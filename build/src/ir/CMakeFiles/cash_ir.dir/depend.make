# Empty dependencies file for cash_ir.
# This may be replaced when dependencies are built.
