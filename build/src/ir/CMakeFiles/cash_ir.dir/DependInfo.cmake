
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/cfg.cpp" "src/ir/CMakeFiles/cash_ir.dir/cfg.cpp.o" "gcc" "src/ir/CMakeFiles/cash_ir.dir/cfg.cpp.o.d"
  "/root/repo/src/ir/dominators.cpp" "src/ir/CMakeFiles/cash_ir.dir/dominators.cpp.o" "gcc" "src/ir/CMakeFiles/cash_ir.dir/dominators.cpp.o.d"
  "/root/repo/src/ir/instr.cpp" "src/ir/CMakeFiles/cash_ir.dir/instr.cpp.o" "gcc" "src/ir/CMakeFiles/cash_ir.dir/instr.cpp.o.d"
  "/root/repo/src/ir/natural_loops.cpp" "src/ir/CMakeFiles/cash_ir.dir/natural_loops.cpp.o" "gcc" "src/ir/CMakeFiles/cash_ir.dir/natural_loops.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/cash_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/cash_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/ir/CMakeFiles/cash_ir.dir/verifier.cpp.o" "gcc" "src/ir/CMakeFiles/cash_ir.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
