file(REMOVE_RECURSE
  "CMakeFiles/cash_ir.dir/cfg.cpp.o"
  "CMakeFiles/cash_ir.dir/cfg.cpp.o.d"
  "CMakeFiles/cash_ir.dir/dominators.cpp.o"
  "CMakeFiles/cash_ir.dir/dominators.cpp.o.d"
  "CMakeFiles/cash_ir.dir/instr.cpp.o"
  "CMakeFiles/cash_ir.dir/instr.cpp.o.d"
  "CMakeFiles/cash_ir.dir/natural_loops.cpp.o"
  "CMakeFiles/cash_ir.dir/natural_loops.cpp.o.d"
  "CMakeFiles/cash_ir.dir/printer.cpp.o"
  "CMakeFiles/cash_ir.dir/printer.cpp.o.d"
  "CMakeFiles/cash_ir.dir/verifier.cpp.o"
  "CMakeFiles/cash_ir.dir/verifier.cpp.o.d"
  "libcash_ir.a"
  "libcash_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
