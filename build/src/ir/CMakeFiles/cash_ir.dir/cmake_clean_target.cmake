file(REMOVE_RECURSE
  "libcash_ir.a"
)
