# Empty dependencies file for cash_mmu.
# This may be replaced when dependencies are built.
