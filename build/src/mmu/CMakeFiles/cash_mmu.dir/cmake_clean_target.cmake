file(REMOVE_RECURSE
  "libcash_mmu.a"
)
