file(REMOVE_RECURSE
  "CMakeFiles/cash_mmu.dir/mmu.cpp.o"
  "CMakeFiles/cash_mmu.dir/mmu.cpp.o.d"
  "libcash_mmu.a"
  "libcash_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
