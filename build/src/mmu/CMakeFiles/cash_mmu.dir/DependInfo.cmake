
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmu/mmu.cpp" "src/mmu/CMakeFiles/cash_mmu.dir/mmu.cpp.o" "gcc" "src/mmu/CMakeFiles/cash_mmu.dir/mmu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x86seg/CMakeFiles/cash_x86seg.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/cash_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
