file(REMOVE_RECURSE
  "libcash_runtime.a"
)
