file(REMOVE_RECURSE
  "CMakeFiles/cash_runtime.dir/array_runtime.cpp.o"
  "CMakeFiles/cash_runtime.dir/array_runtime.cpp.o.d"
  "CMakeFiles/cash_runtime.dir/heap.cpp.o"
  "CMakeFiles/cash_runtime.dir/heap.cpp.o.d"
  "CMakeFiles/cash_runtime.dir/segment_manager.cpp.o"
  "CMakeFiles/cash_runtime.dir/segment_manager.cpp.o.d"
  "libcash_runtime.a"
  "libcash_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
