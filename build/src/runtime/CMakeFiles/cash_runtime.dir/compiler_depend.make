# Empty compiler generated dependencies file for cash_runtime.
# This may be replaced when dependencies are built.
