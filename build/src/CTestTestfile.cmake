# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("x86seg")
subdirs("paging")
subdirs("mmu")
subdirs("kernel")
subdirs("ir")
subdirs("frontend")
subdirs("passes")
subdirs("runtime")
subdirs("vm")
subdirs("core")
subdirs("workloads")
subdirs("netsim")
subdirs("backend")
subdirs("tools")
