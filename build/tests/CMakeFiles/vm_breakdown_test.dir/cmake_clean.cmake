file(REMOVE_RECURSE
  "CMakeFiles/vm_breakdown_test.dir/vm/breakdown_test.cpp.o"
  "CMakeFiles/vm_breakdown_test.dir/vm/breakdown_test.cpp.o.d"
  "vm_breakdown_test"
  "vm_breakdown_test.pdb"
  "vm_breakdown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_breakdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
