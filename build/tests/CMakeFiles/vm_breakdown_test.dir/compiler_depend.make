# Empty compiler generated dependencies file for vm_breakdown_test.
# This may be replaced when dependencies are built.
