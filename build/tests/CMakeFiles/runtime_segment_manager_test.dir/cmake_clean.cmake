file(REMOVE_RECURSE
  "CMakeFiles/runtime_segment_manager_test.dir/runtime/segment_manager_test.cpp.o"
  "CMakeFiles/runtime_segment_manager_test.dir/runtime/segment_manager_test.cpp.o.d"
  "runtime_segment_manager_test"
  "runtime_segment_manager_test.pdb"
  "runtime_segment_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_segment_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
