# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for runtime_segment_manager_test.
