# Empty dependencies file for runtime_segment_manager_test.
# This may be replaced when dependencies are built.
