# Empty compiler generated dependencies file for passes_optimize_test.
# This may be replaced when dependencies are built.
