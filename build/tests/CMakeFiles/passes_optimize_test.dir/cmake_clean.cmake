file(REMOVE_RECURSE
  "CMakeFiles/passes_optimize_test.dir/passes/optimize_test.cpp.o"
  "CMakeFiles/passes_optimize_test.dir/passes/optimize_test.cpp.o.d"
  "passes_optimize_test"
  "passes_optimize_test.pdb"
  "passes_optimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passes_optimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
