file(REMOVE_RECURSE
  "CMakeFiles/frontend_irgen_test.dir/frontend/irgen_test.cpp.o"
  "CMakeFiles/frontend_irgen_test.dir/frontend/irgen_test.cpp.o.d"
  "frontend_irgen_test"
  "frontend_irgen_test.pdb"
  "frontend_irgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_irgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
