# Empty compiler generated dependencies file for frontend_irgen_test.
# This may be replaced when dependencies are built.
