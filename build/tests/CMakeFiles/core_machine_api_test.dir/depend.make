# Empty dependencies file for core_machine_api_test.
# This may be replaced when dependencies are built.
