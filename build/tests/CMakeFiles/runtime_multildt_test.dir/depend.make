# Empty dependencies file for runtime_multildt_test.
# This may be replaced when dependencies are built.
