file(REMOVE_RECURSE
  "CMakeFiles/runtime_multildt_test.dir/runtime/multildt_test.cpp.o"
  "CMakeFiles/runtime_multildt_test.dir/runtime/multildt_test.cpp.o.d"
  "runtime_multildt_test"
  "runtime_multildt_test.pdb"
  "runtime_multildt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_multildt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
