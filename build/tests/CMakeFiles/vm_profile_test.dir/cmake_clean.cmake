file(REMOVE_RECURSE
  "CMakeFiles/vm_profile_test.dir/vm/profile_test.cpp.o"
  "CMakeFiles/vm_profile_test.dir/vm/profile_test.cpp.o.d"
  "vm_profile_test"
  "vm_profile_test.pdb"
  "vm_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
