# Empty compiler generated dependencies file for vm_profile_test.
# This may be replaced when dependencies are built.
