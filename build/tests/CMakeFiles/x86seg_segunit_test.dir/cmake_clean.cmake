file(REMOVE_RECURSE
  "CMakeFiles/x86seg_segunit_test.dir/x86seg/segunit_test.cpp.o"
  "CMakeFiles/x86seg_segunit_test.dir/x86seg/segunit_test.cpp.o.d"
  "x86seg_segunit_test"
  "x86seg_segunit_test.pdb"
  "x86seg_segunit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86seg_segunit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
