
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netsim/netsim_test.cpp" "tests/CMakeFiles/netsim_netsim_test.dir/netsim/netsim_test.cpp.o" "gcc" "tests/CMakeFiles/netsim_netsim_test.dir/netsim/netsim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cash_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cash_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/cash_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/cash_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cash_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cash_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/cash_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/cash_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/cash_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/x86seg/CMakeFiles/cash_x86seg.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/cash_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cash_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cash_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
