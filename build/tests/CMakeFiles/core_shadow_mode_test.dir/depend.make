# Empty dependencies file for core_shadow_mode_test.
# This may be replaced when dependencies are built.
