# Empty dependencies file for workloads_micro_test.
# This may be replaced when dependencies are built.
