file(REMOVE_RECURSE
  "CMakeFiles/workloads_micro_test.dir/workloads/micro_test.cpp.o"
  "CMakeFiles/workloads_micro_test.dir/workloads/micro_test.cpp.o.d"
  "workloads_micro_test"
  "workloads_micro_test.pdb"
  "workloads_micro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_micro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
