# Empty dependencies file for passes_rce_test.
# This may be replaced when dependencies are built.
