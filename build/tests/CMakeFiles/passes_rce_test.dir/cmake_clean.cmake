file(REMOVE_RECURSE
  "CMakeFiles/passes_rce_test.dir/passes/rce_test.cpp.o"
  "CMakeFiles/passes_rce_test.dir/passes/rce_test.cpp.o.d"
  "passes_rce_test"
  "passes_rce_test.pdb"
  "passes_rce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passes_rce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
