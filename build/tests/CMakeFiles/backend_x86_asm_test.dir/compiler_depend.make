# Empty compiler generated dependencies file for backend_x86_asm_test.
# This may be replaced when dependencies are built.
