file(REMOVE_RECURSE
  "CMakeFiles/backend_x86_asm_test.dir/backend/x86_asm_test.cpp.o"
  "CMakeFiles/backend_x86_asm_test.dir/backend/x86_asm_test.cpp.o.d"
  "backend_x86_asm_test"
  "backend_x86_asm_test.pdb"
  "backend_x86_asm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_x86_asm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
