file(REMOVE_RECURSE
  "CMakeFiles/core_security_mode_test.dir/core/security_mode_test.cpp.o"
  "CMakeFiles/core_security_mode_test.dir/core/security_mode_test.cpp.o.d"
  "core_security_mode_test"
  "core_security_mode_test.pdb"
  "core_security_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_security_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
