file(REMOVE_RECURSE
  "CMakeFiles/passes_lower_test.dir/passes/lower_test.cpp.o"
  "CMakeFiles/passes_lower_test.dir/passes/lower_test.cpp.o.d"
  "passes_lower_test"
  "passes_lower_test.pdb"
  "passes_lower_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passes_lower_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
