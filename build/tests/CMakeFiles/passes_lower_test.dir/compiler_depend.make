# Empty compiler generated dependencies file for passes_lower_test.
# This may be replaced when dependencies are built.
