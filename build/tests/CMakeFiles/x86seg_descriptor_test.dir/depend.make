# Empty dependencies file for x86seg_descriptor_test.
# This may be replaced when dependencies are built.
