# Empty dependencies file for kernel_kernel_test.
# This may be replaced when dependencies are built.
