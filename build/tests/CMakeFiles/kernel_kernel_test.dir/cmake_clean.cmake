file(REMOVE_RECURSE
  "CMakeFiles/kernel_kernel_test.dir/kernel/kernel_test.cpp.o"
  "CMakeFiles/kernel_kernel_test.dir/kernel/kernel_test.cpp.o.d"
  "kernel_kernel_test"
  "kernel_kernel_test.pdb"
  "kernel_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
