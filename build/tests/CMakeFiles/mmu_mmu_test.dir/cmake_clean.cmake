file(REMOVE_RECURSE
  "CMakeFiles/mmu_mmu_test.dir/mmu/mmu_test.cpp.o"
  "CMakeFiles/mmu_mmu_test.dir/mmu/mmu_test.cpp.o.d"
  "mmu_mmu_test"
  "mmu_mmu_test.pdb"
  "mmu_mmu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmu_mmu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
