file(REMOVE_RECURSE
  "CMakeFiles/passes_stats_test.dir/passes/stats_test.cpp.o"
  "CMakeFiles/passes_stats_test.dir/passes/stats_test.cpp.o.d"
  "passes_stats_test"
  "passes_stats_test.pdb"
  "passes_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passes_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
