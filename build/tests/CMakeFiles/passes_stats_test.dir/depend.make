# Empty dependencies file for passes_stats_test.
# This may be replaced when dependencies are built.
