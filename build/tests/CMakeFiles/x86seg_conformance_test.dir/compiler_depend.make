# Empty compiler generated dependencies file for x86seg_conformance_test.
# This may be replaced when dependencies are built.
