file(REMOVE_RECURSE
  "CMakeFiles/x86seg_conformance_test.dir/x86seg/conformance_test.cpp.o"
  "CMakeFiles/x86seg_conformance_test.dir/x86seg/conformance_test.cpp.o.d"
  "x86seg_conformance_test"
  "x86seg_conformance_test.pdb"
  "x86seg_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86seg_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
