file(REMOVE_RECURSE
  "CMakeFiles/ir_analyses_test.dir/ir/analyses_test.cpp.o"
  "CMakeFiles/ir_analyses_test.dir/ir/analyses_test.cpp.o.d"
  "ir_analyses_test"
  "ir_analyses_test.pdb"
  "ir_analyses_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_analyses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
