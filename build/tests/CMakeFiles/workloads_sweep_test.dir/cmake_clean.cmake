file(REMOVE_RECURSE
  "CMakeFiles/workloads_sweep_test.dir/workloads/sweep_test.cpp.o"
  "CMakeFiles/workloads_sweep_test.dir/workloads/sweep_test.cpp.o.d"
  "workloads_sweep_test"
  "workloads_sweep_test.pdb"
  "workloads_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
