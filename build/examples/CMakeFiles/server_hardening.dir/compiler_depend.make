# Empty compiler generated dependencies file for server_hardening.
# This may be replaced when dependencies are built.
