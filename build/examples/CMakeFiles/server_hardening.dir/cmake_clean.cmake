file(REMOVE_RECURSE
  "CMakeFiles/server_hardening.dir/server_hardening.cpp.o"
  "CMakeFiles/server_hardening.dir/server_hardening.cpp.o.d"
  "server_hardening"
  "server_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
