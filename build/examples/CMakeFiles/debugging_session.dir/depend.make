# Empty dependencies file for debugging_session.
# This may be replaced when dependencies are built.
