file(REMOVE_RECURSE
  "CMakeFiles/debugging_session.dir/debugging_session.cpp.o"
  "CMakeFiles/debugging_session.dir/debugging_session.cpp.o.d"
  "debugging_session"
  "debugging_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugging_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
