# Empty dependencies file for overflow_detection.
# This may be replaced when dependencies are built.
