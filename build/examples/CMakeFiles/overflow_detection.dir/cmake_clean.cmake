file(REMOVE_RECURSE
  "CMakeFiles/overflow_detection.dir/overflow_detection.cpp.o"
  "CMakeFiles/overflow_detection.dir/overflow_detection.cpp.o.d"
  "overflow_detection"
  "overflow_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overflow_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
