// Debugging scenario (Section 3.8 mentions Cash doubles as a debugging
// tool): a program with a subtle off-by-one that only corrupts memory for
// certain inputs. Running it under Cash pinpoints the faulting function,
// source line, and address — without recompiling with a heavyweight
// checker.
//
//   $ ./examples/debugging_session
#include <cstdio>

#include "core/cash.hpp"

int main() {
  // The bug: `i <= n` should be `i < n` — a classic. It only overruns when
  // the caller passes the full capacity.
  const char* buggy = R"(
int totals[12];

void accumulate(int *dst, int n, int seed) {
  int i;
  for (i = 0; i <= n; i++) {      // off-by-one lurks here
    dst[i] = dst[i] + seed * (i + 1);
  }
}

int main() {
  int month;
  for (month = 0; month < 12; month++) {
    accumulate(totals, 11, month);  // fine: touches 0..11
  }
  accumulate(totals, 12, 99);       // boom: touches 0..12
  return totals[0];
}
)";

  std::printf("Running the buggy program unchecked:\n");
  {
    cash::CompileOptions options;
    options.lower.mode = cash::passes::CheckMode::kNoCheck;
    cash::CompileResult compiled = cash::compile(buggy, options);
    cash::vm::RunResult run = compiled.program->run();
    std::printf("  -> %s (exit %d) — the overrun went unnoticed\n\n",
                run.ok ? "completed" : "failed", run.exit_code);
  }

  std::printf("Running it under Cash:\n");
  cash::CompileOptions options;
  options.lower.mode = cash::passes::CheckMode::kCash;
  cash::CompileResult compiled = cash::compile(buggy, options);
  cash::vm::RunResult run = compiled.program->run();
  if (run.ok || !run.fault.has_value()) {
    std::printf("  -> unexpectedly completed\n");
    return 1;
  }
  std::printf("  -> %s\n     %s\n", to_string(run.fault->kind),
              run.fault->detail.c_str());
  std::printf("\nThe diagnostic names the function and source line of the\n"
              "first out-of-bounds access: the `i <= n` loop bound in\n"
              "accumulate(). The 13 successful calls before it ran at full\n"
              "speed — %llu hardware-checked accesses, zero software checks.\n",
              static_cast<unsigned long long>(
                  run.counters.hw_checked_accesses));
  return 0;
}
