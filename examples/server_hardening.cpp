// Server-hardening scenario: take the Sendmail-style request handler from
// the workload suite, serve a batch of requests with and without Cash, and
// report the latency/throughput cost of turning bound checking on — the
// deployment decision the paper's Table 8 informs.
//
//   $ ./examples/server_hardening [requests]
#include <cstdio>
#include <cstdlib>

#include "netsim/netsim.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 500;

  // Pick the hardest case: Sendmail, whose address-rewriting loops touch
  // more arrays than there are free segment registers.
  const cash::workloads::Workload* sendmail = nullptr;
  for (const auto& w : cash::workloads::network_suite()) {
    if (w.name == "Sendmail") {
      sendmail = &w;
    }
  }
  if (sendmail == nullptr) {
    return 1;
  }

  std::printf("Serving %d SMTP-like requests through the Sendmail analog:\n\n",
              requests);
  std::printf("%-22s %16s %16s %12s\n", "build", "latency (us)",
              "throughput (rps)", "sw checks");

  double base_latency = 0;
  double base_throughput = 0;
  for (cash::passes::CheckMode mode :
       {cash::passes::CheckMode::kNoCheck, cash::passes::CheckMode::kCash}) {
    cash::CompileOptions options;
    options.lower.mode = mode;
    cash::CompileResult compiled = cash::compile(sendmail->source, options);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile error:\n%s", compiled.error.c_str());
      return 1;
    }
    const cash::netsim::ServerMetrics metrics =
        cash::netsim::serve_requests(*compiled.program, requests);
    std::printf("%-22s %16.2f %16.0f %12llu\n",
                mode == cash::passes::CheckMode::kNoCheck
                    ? "unchecked (gcc)"
                    : "bound-checked (cash)",
                metrics.mean_latency_us, metrics.throughput_rps,
                static_cast<unsigned long long>(metrics.sw_checks));
    if (mode == cash::passes::CheckMode::kNoCheck) {
      base_latency = metrics.mean_latency_us;
      base_throughput = metrics.throughput_rps;
    } else {
      std::printf(
          "\nHardening cost: +%.1f%% latency, -%.1f%% throughput —\n"
          "every in-loop buffer access bound-checked, overflows impossible.\n",
          (metrics.mean_latency_us - base_latency) / base_latency * 100.0,
          (base_throughput - metrics.throughput_rps) / base_throughput *
              100.0);
    }
  }
  return 0;
}
