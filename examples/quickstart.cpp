// Quickstart: compile one MiniC program under the three checking modes of
// the paper (GCC baseline, BCC software checks, Cash segment-hardware
// checks), run it on the simulated Pentium-III, and compare costs.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/cash.hpp"

int main() {
  const char* source = R"(
int histogram[64];
int main() {
  int i;
  int peak = 0;
  for (i = 0; i < 10000; i++) {
    histogram[i * 37 % 64] = histogram[i * 37 % 64] + 1;
  }
  for (i = 0; i < 64; i++) {
    if (histogram[i] > peak) {
      peak = histogram[i];
    }
  }
  print_int(peak);
  return peak;
}
)";

  std::printf("Compiling a histogram kernel under three checking modes:\n\n");
  std::printf("%-8s %12s %10s %12s %12s\n", "mode", "cycles", "overhead",
              "hw checks", "sw checks");

  std::uint64_t baseline = 0;
  for (cash::passes::CheckMode mode : {cash::passes::CheckMode::kNoCheck,
                                       cash::passes::CheckMode::kCash,
                                       cash::passes::CheckMode::kBcc}) {
    cash::CompileOptions options;
    options.lower.mode = mode;
    cash::CompileResult compiled = cash::compile(source, options);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile error:\n%s", compiled.error.c_str());
      return 1;
    }
    cash::vm::RunResult run = compiled.program->run();
    if (!run.ok) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.fault ? run.fault->detail.c_str() : run.error.c_str());
      return 1;
    }
    if (mode == cash::passes::CheckMode::kNoCheck) {
      baseline = run.cycles;
    }
    std::printf("%-8s %12llu %9.2f%% %12llu %12llu\n", to_string(mode),
                static_cast<unsigned long long>(run.cycles),
                baseline == 0
                    ? 0.0
                    : 100.0 * (static_cast<double>(run.cycles) -
                               static_cast<double>(baseline)) /
                          static_cast<double>(baseline),
                static_cast<unsigned long long>(
                    run.counters.hw_checked_accesses),
                static_cast<unsigned long long>(run.counters.sw_checks));
  }

  std::printf(
      "\nCash routed every in-loop array reference through a segment\n"
      "register, so the X86 segment-limit hardware performed the bound\n"
      "checks for free — that is the paper's whole idea.\n");
  return 0;
}
