// Buffer-overflow detection demo: a vulnerable request parser (a classic
// stack-smash pattern — unchecked copy loop into a fixed buffer) processed
// under each checking mode. The unchecked build silently corrupts memory;
// Cash stops the overflow at the exact first out-of-bounds write, via the
// segment-limit check in the simulated MMU.
//
//   $ ./examples/overflow_detection
#include <cstdio>
#include <string>

#include "core/cash.hpp"
#include "workloads/workloads.hpp"

namespace {

const char* vulnerable_server(int request_len) {
  static std::string source;
  source = cash::workloads::expand_template(R"(
int request[512];
int secret;

int parse(int *req, int len) {
  int header[16];       // fixed-size buffer...
  int i;
  for (i = 0; i < len; i++) {
    header[i] = req[i]; // ...filled by an unchecked copy loop
  }
  return header[0];
}

int main() {
  int i;
  secret = 12345;
  for (i = 0; i < ${LEN}; i++) {
    request[i] = 65 + i % 26;
  }
  print_int(parse(request, ${LEN}));
  print_int(secret);
  return 0;
}
)",
                                            {{"LEN", std::to_string(request_len)}});
  return source.c_str();
}

} // namespace

int main() {
  std::printf("A vulnerable parser copies the request into a 16-entry\n"
              "buffer. We send a benign 12-entry request, then a malicious\n"
              "40-entry one, under each checking mode.\n\n");

  for (int len : {12, 40}) {
    std::printf("=== request length %d (%s) ===\n", len,
                len <= 16 ? "benign" : "attack");
    for (cash::passes::CheckMode mode : {cash::passes::CheckMode::kNoCheck,
                                         cash::passes::CheckMode::kBcc,
                                         cash::passes::CheckMode::kCash}) {
      cash::CompileOptions options;
      options.lower.mode = mode;
      cash::CompileResult compiled =
          cash::compile(vulnerable_server(len), options);
      if (!compiled.ok()) {
        std::fprintf(stderr, "compile error:\n%s", compiled.error.c_str());
        return 1;
      }
      cash::vm::RunResult run = compiled.program->run();
      if (run.ok) {
        std::printf("  %-6s completed normally\n", to_string(mode));
      } else if (run.fault.has_value()) {
        std::printf("  %-6s ABORTED: %s: %s\n", to_string(mode),
                    to_string(run.fault->kind), run.fault->detail.c_str());
      } else {
        std::printf("  %-6s error: %s\n", to_string(mode), run.error.c_str());
      }
    }
    std::printf("\n");
  }

  std::printf(
      "Note how the unchecked build 'completed normally' even for the\n"
      "attack — the overflow scribbled past the buffer undetected. Cash\n"
      "raised a #GP from the segment-limit check at the first bad write,\n"
      "with the faulting function and line in the diagnostic.\n");
  return 0;
}
