// Profiling scenario: where do the cycles — and the checking overhead — go?
// Runs the Cjpeg analog under GCC and Cash, prints a per-function profile
// and the cycle breakdown, and shows that Cash's cost concentrates in the
// functions that allocate local arrays, not in the hot loops.
//
//   $ ./examples/profile_hotspots
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cash.hpp"
#include "workloads/workloads.hpp"

namespace {

cash::vm::RunResult run_mode(const std::string& source,
                             cash::passes::CheckMode mode) {
  cash::CompileOptions options;
  options.lower.mode = mode;
  cash::CompileResult compiled = cash::compile(source, options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error:\n%s", compiled.error.c_str());
    std::exit(1);
  }
  cash::vm::RunResult run = compiled.program->run();
  if (!run.ok) {
    std::fprintf(stderr, "run failed: %s\n",
                 run.fault ? run.fault->detail.c_str() : run.error.c_str());
    std::exit(1);
  }
  return run;
}

void print_profile(const char* title, const cash::vm::RunResult& run) {
  std::printf("%s — %llu cycles total "
              "(base %llu, checking %llu, runtime %llu)\n",
              title, static_cast<unsigned long long>(run.cycles),
              static_cast<unsigned long long>(run.breakdown.base),
              static_cast<unsigned long long>(run.breakdown.checking),
              static_cast<unsigned long long>(run.breakdown.runtime));
  std::vector<std::pair<std::string, cash::vm::FunctionProfile>> rows(
      run.profile.begin(), run.profile.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_cycles > b.second.self_cycles;
  });
  std::printf("  %-16s %12s %14s %8s\n", "function", "calls", "self cycles",
              "share");
  for (const auto& [name, prof] : rows) {
    std::printf("  %-16s %12llu %14llu %7.1f%%\n", name.c_str(),
                static_cast<unsigned long long>(prof.calls),
                static_cast<unsigned long long>(prof.self_cycles),
                100.0 * static_cast<double>(prof.self_cycles) /
                    static_cast<double>(run.cycles));
  }
  std::printf("\n");
}

} // namespace

int main() {
  const cash::workloads::Workload* cjpeg = nullptr;
  for (const auto& w : cash::workloads::macro_suite()) {
    if (w.name == "Cjpeg") {
      cjpeg = &w;
    }
  }
  if (cjpeg == nullptr) {
    return 1;
  }

  std::printf("Profiling the Cjpeg analog (4096 DCT blocks):\n\n");
  const cash::vm::RunResult gcc =
      run_mode(cjpeg->source, cash::passes::CheckMode::kNoCheck);
  const cash::vm::RunResult cash_run =
      run_mode(cjpeg->source, cash::passes::CheckMode::kCash);

  print_profile("unchecked (gcc)", gcc);
  print_profile("bound-checked (cash)", cash_run);

  const double block_delta =
      static_cast<double>(cash_run.profile.at("dct_block").self_cycles) -
      static_cast<double>(gcc.profile.at("dct_block").self_cycles);
  std::printf(
      "dct_block costs +%.0f cycles across %llu calls under Cash — about\n"
      "%.1f cycles per call: the hoisted segment loads plus the 3-entry-\n"
      "cache hits for its three local arrays. The per-iteration loop work\n"
      "is untouched; that is the whole trick.\n",
      block_delta,
      static_cast<unsigned long long>(cash_run.profile.at("dct_block").calls),
      block_delta /
          static_cast<double>(cash_run.profile.at("dct_block").calls));
  return 0;
}
